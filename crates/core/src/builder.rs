//! Building SSJoin inputs from token groups.
//!
//! The paper's pipelines (Figure 2) first convert strings to sets and
//! construct normalized representations `R(A, B, norm(A))`. The builder does
//! that conversion for any number of relations at once, so both join sides
//! share one element universe, one weight assignment, and one global order:
//!
//! 1. tokens are interned across all relations;
//! 2. multisets are ordinalized (§4.3.1): occurrence *i* of token *t*
//!    becomes the element *(t, i)*;
//! 3. element weights are assigned (unweighted, or IDF over value
//!    frequencies exactly as §5 describes);
//! 4. the global order `O` is fixed (ascending frequency by default,
//!    §4.3.2) and every element is renamed to its dense *rank* in `O`.

use crate::error::{SsJoinError, SsJoinResult};
use crate::hash::FxHashMap;
use crate::order::ElementOrder;
use crate::set::SetCollection;
use crate::weight::Weight;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIVERSE_TAG: AtomicU64 = AtomicU64::new(1);

/// A process-unique universe tag (used by builds and by deserialization).
pub(crate) fn fresh_universe_tag() -> u64 {
    UNIVERSE_TAG.fetch_add(1, Ordering::Relaxed)
}

/// Element weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightScheme {
    /// Every element has weight 1. Overlap = multiset intersection size.
    #[default]
    Unweighted,
    /// Inverse document frequency, the paper's §5 choice: the weight of
    /// token `t` is `ln(1 + N / f_t)` where `N` is the total number of
    /// values (groups) across all relations and `f_t` the number of values
    /// containing `t`. (The paper uses `log(N / f_t)`; the `1 +` smoothing
    /// keeps weights strictly positive, which the weight model of §2
    /// requires, without changing relative order.)
    Idf,
    /// Squared IDF: `ln(1 + N / f_t)²`. With this scheme the weighted
    /// overlap of two *sets* equals the dot product of their IDF vectors,
    /// which is what the cosine similarity join needs (§6 cites cosine
    /// custom joins as SSJoin-expressible).
    IdfSquared,
}

/// How a group's norm (the quantity normalized predicates reference) is
/// derived.
#[derive(Debug, Clone, PartialEq)]
pub enum NormKind {
    /// `norm = wt(set)` — the weighted-set norm of Definition 5's Jaccard.
    TotalWeight,
    /// `norm = √wt(set)` — the L2 vector norm when element weights are
    /// squared (see [`WeightScheme::IdfSquared`]); the cosine join's
    /// normalizer.
    SqrtTotalWeight,
    /// `norm = |set|` (multiset cardinality) — e.g. q-gram counts.
    Cardinality,
    /// Caller-provided per-group norms (e.g. string lengths for the edit
    /// join). Must have one value per group.
    Custom(Vec<f64>),
}

/// Identifies a relation added to the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationHandle(usize);

struct RelationData {
    groups: Vec<Vec<String>>,
    norm: NormKind,
}

/// Builds [`SetCollection`]s sharing one universe, weight assignment, and
/// global element order.
pub struct SsJoinInputBuilder {
    scheme: WeightScheme,
    order: ElementOrder,
    relations: Vec<RelationData>,
}

impl SsJoinInputBuilder {
    /// New builder with the given weighting scheme and global order.
    pub fn new(scheme: WeightScheme, order: ElementOrder) -> Self {
        Self {
            scheme,
            order,
            relations: Vec::new(),
        }
    }

    /// Add a relation: one token multiset per group. Norms default to the
    /// set's total weight.
    pub fn add_relation(&mut self, groups: Vec<Vec<String>>) -> RelationHandle {
        self.add_relation_with_norm(groups, NormKind::TotalWeight)
    }

    /// Add a relation with an explicit norm derivation.
    ///
    /// `NormKind::Custom` norms must have one value per group; the arity is
    /// validated by [`SsJoinInputBuilder::build`], which reports a mismatch
    /// as [`SsJoinError::InvalidInput`].
    pub fn add_relation_with_norm(
        &mut self,
        groups: Vec<Vec<String>>,
        norm: NormKind,
    ) -> RelationHandle {
        let handle = RelationHandle(self.relations.len());
        self.relations.push(RelationData { groups, norm });
        handle
    }

    /// Materialize every relation into a [`SetCollection`].
    ///
    /// # Errors
    /// Returns [`SsJoinError::InvalidInput`] when `NormKind::Custom` norms do
    /// not have one value per group, [`SsJoinError::TooManyGroups`] when a
    /// relation holds more groups than `u32` ids can address (group ids are
    /// capped at `u32::MAX - 1`, reserving `u32::MAX` as an executor
    /// sentinel), and [`SsJoinError::TooManyElements`] when the interned
    /// token/element universe or a collection's tuple arena overflows the
    /// `u32` id space.
    pub fn build(self) -> SsJoinResult<BuiltInput> {
        let tag = fresh_universe_tag();

        // Validate up front: custom-norm arity and the group-id space.
        // Group ids must stay strictly below u32::MAX because executors use
        // u32::MAX as a stamp-array sentinel.
        for (ri, rel) in self.relations.iter().enumerate() {
            if rel.groups.len() >= u32::MAX as usize {
                return Err(SsJoinError::TooManyGroups {
                    relation: ri,
                    groups: rel.groups.len(),
                });
            }
            if let NormKind::Custom(norms) = &rel.norm {
                if norms.len() != rel.groups.len() {
                    return Err(SsJoinError::InvalidInput(format!(
                        "custom norms must have one value per group: relation {ri} \
                         has {} groups but {} norms",
                        rel.groups.len(),
                        norms.len()
                    )));
                }
            }
        }

        // Pass 1: intern tokens and ordinalized elements; count frequencies.
        let mut token_ids: FxHashMap<String, u32> = FxHashMap::default();
        let mut tokens: Vec<String> = Vec::new();
        let mut element_ids: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        let mut elements: Vec<(u32, u32)> = Vec::new(); // eid -> (tid, ordinal)
        let mut element_freq: Vec<usize> = Vec::new(); // groups containing eid
        let mut token_freq: Vec<usize> = Vec::new(); // groups containing tid
                                                     // Per-group element lists (eids), per relation.
        let mut rel_groups: Vec<Vec<Vec<u32>>> = Vec::with_capacity(self.relations.len());
        let total_groups: usize = self.relations.iter().map(|r| r.groups.len()).sum();

        let mut occurrence_counter: FxHashMap<u32, u32> = FxHashMap::default();
        for rel in &self.relations {
            let mut groups_out = Vec::with_capacity(rel.groups.len());
            for group in &rel.groups {
                occurrence_counter.clear();
                let mut eids = Vec::with_capacity(group.len());
                for token in group {
                    let tid = match token_ids.get(token.as_str()) {
                        Some(&t) => t,
                        None => {
                            if tokens.len() >= u32::MAX as usize {
                                return Err(SsJoinError::TooManyElements {
                                    elements: tokens.len() + 1,
                                });
                            }
                            let t = tokens.len() as u32;
                            tokens.push(token.clone());
                            token_ids.insert(token.clone(), t);
                            token_freq.push(0);
                            t
                        }
                    };
                    let ord = occurrence_counter.entry(tid).or_insert(0);
                    *ord += 1;
                    if *ord == 1 {
                        token_freq[tid as usize] += 1;
                    }
                    let key = (tid, *ord);
                    let eid = match element_ids.get(&key) {
                        Some(&e) => e,
                        None => {
                            if elements.len() >= u32::MAX as usize {
                                return Err(SsJoinError::TooManyElements {
                                    elements: elements.len() + 1,
                                });
                            }
                            let e = elements.len() as u32;
                            elements.push(key);
                            element_ids.insert(key, e);
                            element_freq.push(0);
                            e
                        }
                    };
                    element_freq[eid as usize] += 1;
                    eids.push(eid);
                }
                groups_out.push(eids);
            }
            rel_groups.push(groups_out);
        }

        // Weights per element (by eid), from the token-level scheme.
        let weights_by_eid: Vec<Weight> = elements
            .iter()
            .map(|&(tid, _)| match self.scheme {
                WeightScheme::Unweighted => Weight::ONE,
                WeightScheme::Idf => {
                    let ft = token_freq[tid as usize].max(1) as f64;
                    Weight::from_f64((1.0 + total_groups as f64 / ft).ln())
                }
                WeightScheme::IdfSquared => {
                    let ft = token_freq[tid as usize].max(1) as f64;
                    let idf = (1.0 + total_groups as f64 / ft).ln();
                    Weight::from_f64(idf * idf)
                }
            })
            .collect();

        // Global order: rank per eid.
        let mut order_keys: Vec<u32> = (0..elements.len() as u32).collect();
        order_keys.sort_unstable_by_key(|&eid| {
            let (tid, _) = elements[eid as usize];
            self.order.sort_key(
                element_freq[eid as usize],
                &tokens[tid as usize],
                eid as u64,
            )
        });
        let mut rank_of_eid = vec![0u32; elements.len()];
        for (rank, &eid) in order_keys.iter().enumerate() {
            rank_of_eid[eid as usize] = rank as u32;
        }

        // Element metadata in rank order.
        let mut element_meta: Vec<(String, u32)> = vec![(String::new(), 0); elements.len()];
        let mut weights_by_rank: Vec<Weight> = vec![Weight::ZERO; elements.len()];
        for (eid, &(tid, ord)) in elements.iter().enumerate() {
            let rank = rank_of_eid[eid] as usize;
            element_meta[rank] = (tokens[tid as usize].clone(), ord);
            weights_by_rank[rank] = weights_by_eid[eid];
        }

        // Pass 2: build collections.
        let universe = elements.len();
        let mut collections = Vec::with_capacity(self.relations.len());
        for (rel, groups) in self.relations.iter().zip(rel_groups) {
            let mut sets = Vec::with_capacity(groups.len());
            for (gi, eids) in groups.iter().enumerate() {
                let elems: Vec<(u32, Weight)> = eids
                    .iter()
                    .map(|&eid| (rank_of_eid[eid as usize], weights_by_eid[eid as usize]))
                    .collect();
                let norm = match &rel.norm {
                    NormKind::TotalWeight => elems.iter().map(|&(_, w)| w).sum::<Weight>().to_f64(),
                    NormKind::SqrtTotalWeight => elems
                        .iter()
                        .map(|&(_, w)| w)
                        .sum::<Weight>()
                        .to_f64()
                        .sqrt(),
                    NormKind::Cardinality => elems.len() as f64,
                    NormKind::Custom(norms) => norms[gi],
                };
                sets.push((elems, norm));
            }
            collections.push(SetCollection::from_sets(sets, universe, tag)?);
        }

        Ok(BuiltInput {
            collections,
            element_meta,
            weights_by_rank,
        })
    }
}

/// The output of [`SsJoinInputBuilder::build`]: the collections plus the
/// shared universe metadata.
#[derive(Debug)]
pub struct BuiltInput {
    collections: Vec<SetCollection>,
    /// `(token, ordinal)` per rank.
    element_meta: Vec<(String, u32)>,
    /// Weight per rank.
    weights_by_rank: Vec<Weight>,
}

impl BuiltInput {
    /// The collection built for `handle`.
    pub fn collection(&self, handle: RelationHandle) -> &SetCollection {
        &self.collections[handle.0]
    }

    /// All collections, in handle order.
    pub fn collections(&self) -> &[SetCollection] {
        &self.collections
    }

    /// Consume into the collections, in handle order.
    pub fn into_collections(self) -> Vec<SetCollection> {
        self.collections
    }

    /// Reassemble a built input from its parts (deserialization).
    pub(crate) fn from_parts(
        collections: Vec<SetCollection>,
        element_meta: Vec<(String, u32)>,
        weights_by_rank: Vec<Weight>,
    ) -> Self {
        Self {
            collections,
            element_meta,
            weights_by_rank,
        }
    }

    /// Number of distinct elements in the universe.
    pub fn universe_size(&self) -> usize {
        self.element_meta.len()
    }

    /// The `(token, ordinal)` a rank denotes.
    pub fn element(&self, rank: u32) -> (&str, u32) {
        let (t, o) = &self.element_meta[rank as usize];
        (t.as_str(), *o)
    }

    /// The weight of the element at `rank`.
    pub fn element_weight(&self, rank: u32) -> Weight {
        self.weights_by_rank[rank as usize]
    }

    /// A [`QueryEncoder`] over this build's frozen universe, for encoding
    /// streamed queries against a prebuilt [`crate::CorpusIndex`].
    pub fn query_encoder(&self) -> QueryEncoder {
        let mut ids: FxHashMap<String, Vec<u32>> = FxHashMap::default();
        for (rank, (token, ord)) in self.element_meta.iter().enumerate() {
            let slots = ids.entry(token.clone()).or_default();
            let idx = (*ord as usize).saturating_sub(1);
            if slots.len() <= idx {
                slots.resize(idx + 1, u32::MAX);
            }
            slots[idx] = rank as u32;
        }
        QueryEncoder {
            ids,
            weights: self.weights_by_rank.clone(),
            universe_size: self.element_meta.len(),
            universe_tag: self
                .collections
                .first()
                .map(|c| c.universe_tag())
                .unwrap_or_else(fresh_universe_tag),
        }
    }
}

/// Encodes fresh token groups against the frozen universe of an existing
/// [`BuiltInput`], so streamed queries (and incremental corpus inserts) can
/// run against a prebuilt [`crate::CorpusIndex`] without rebuilding the
/// whole input.
///
/// Tokens — and multiset occurrences — never seen by the original build have
/// no rank in the frozen universe and are dropped from the encoded set. That
/// is exact for overlaps: an unseen element occurs in no corpus set, so it
/// can contribute nothing to any overlap. Norms derived outside the element
/// universe stay exact too ([`NormKind::Cardinality`] counts *all* tokens of
/// the group, dropped or not, and [`NormKind::Custom`] is caller-provided).
/// [`NormKind::TotalWeight`] and [`NormKind::SqrtTotalWeight`] sum the
/// weights of *known* elements only, which under-states the norm of queries
/// containing unseen tokens; prefer cardinality or custom norms for streamed
/// workloads under those schemes.
#[derive(Debug, Clone)]
pub struct QueryEncoder {
    /// token -> rank per ordinal (index `ord - 1`).
    ids: FxHashMap<String, Vec<u32>>,
    weights: Vec<Weight>,
    universe_size: usize,
    universe_tag: u64,
}

impl QueryEncoder {
    /// Look up the rank of `(token, ordinal)` in the frozen universe.
    /// Ordinals are 1-based, matching §4.3.1 ordinalization.
    pub fn rank_of(&self, token: &str, ordinal: u32) -> Option<u32> {
        self.ids
            .get(token)
            .and_then(|slots| slots.get((ordinal as usize).checked_sub(1)?))
            .copied()
            .filter(|&r| r != u32::MAX)
    }

    /// Encode one token multiset into `(rank, weight)` elements, dropping
    /// tokens outside the frozen universe. Elements come back in occurrence
    /// order; [`QueryEncoder::encode`] (via the collection constructor)
    /// handles sorting.
    pub fn encode_group(&self, group: &[String]) -> Vec<(u32, Weight)> {
        let mut occurrence: FxHashMap<&str, u32> = FxHashMap::default();
        let mut elems = Vec::with_capacity(group.len());
        for token in group {
            let ord = occurrence.entry(token.as_str()).or_insert(0);
            *ord += 1;
            if let Some(rank) = self.rank_of(token, *ord) {
                elems.push((rank, self.weights[rank as usize]));
            }
        }
        elems
    }

    /// Encode token groups into a [`SetCollection`] sharing the frozen
    /// universe (same tag, same ranks, same weights), suitable as a probe
    /// batch for [`crate::CorpusIndex::probe`].
    ///
    /// # Errors
    /// Returns [`SsJoinError::InvalidInput`] when `NormKind::Custom` norms
    /// do not have one value per group.
    pub fn encode(&self, groups: &[Vec<String>], norm: NormKind) -> SsJoinResult<SetCollection> {
        if let NormKind::Custom(norms) = &norm {
            if norms.len() != groups.len() {
                return Err(SsJoinError::InvalidInput(format!(
                    "custom norms must have one value per group: \
                     {} groups but {} norms",
                    groups.len(),
                    norms.len()
                )));
            }
        }
        let mut sets = Vec::with_capacity(groups.len());
        for (gi, group) in groups.iter().enumerate() {
            let elems = self.encode_group(group);
            let norm_value = match &norm {
                NormKind::TotalWeight => elems.iter().map(|&(_, w)| w).sum::<Weight>().to_f64(),
                NormKind::SqrtTotalWeight => elems
                    .iter()
                    .map(|&(_, w)| w)
                    .sum::<Weight>()
                    .to_f64()
                    .sqrt(),
                NormKind::Cardinality => group.len() as f64,
                NormKind::Custom(norms) => norms[gi],
            };
            sets.push((elems, norm_value));
        }
        SetCollection::from_sets(sets, self.universe_size, self.universe_tag)
    }

    /// Number of distinct elements in the frozen universe.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unweighted_overlap_counts_elements() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        let h = b.add_relation(vec![toks(&["a", "b", "c"]), toks(&["b", "c", "d"])]);
        let built = b.build().unwrap();
        let c = built.collection(h);
        assert_eq!(c.len(), 2);
        assert_eq!(c.set(0).overlap(c.set(1)), Weight::from_f64(2.0));
    }

    #[test]
    fn multiset_ordinalization() {
        // {x, x} vs {x}: multiset overlap is 1, not 2.
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        let h = b.add_relation(vec![toks(&["x", "x"]), toks(&["x"])]);
        let built = b.build().unwrap();
        let c = built.collection(h);
        assert_eq!(c.set(0).len(), 2); // (x,1), (x,2)
        assert_eq!(c.set(0).overlap(c.set(1)), Weight::ONE);
        assert_eq!(c.universe_size(), 2);
    }

    #[test]
    fn shared_universe_across_relations() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        let r = b.add_relation(vec![toks(&["p", "q"])]);
        let s = b.add_relation(vec![toks(&["q", "z"])]);
        let built = b.build().unwrap();
        let overlap = built
            .collection(r)
            .set(0)
            .overlap(built.collection(s).set(0));
        assert_eq!(overlap, Weight::ONE); // shared "q"
    }

    #[test]
    fn idf_weights_rare_tokens_heavier() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Idf, ElementOrder::FrequencyAsc);
        // "the" in all 4 groups, "zyx" in one.
        let h = b.add_relation(vec![
            toks(&["the", "zyx"]),
            toks(&["the", "b"]),
            toks(&["the", "c"]),
            toks(&["the", "d"]),
        ]);
        let built = b.build().unwrap();
        let c = built.collection(h);
        // Under FrequencyAsc the rare elements come first; "the" (freq 4) is
        // the last rank.
        let last_rank = (built.universe_size() - 1) as u32;
        let (token, _) = built.element(last_rank);
        assert_eq!(token, "the");
        // IDF: ln(1 + 4/4) < ln(1 + 4/1).
        let w_the = built.element_weight(last_rank);
        let w_rare = built.element_weight(0);
        assert!(w_rare > w_the, "rare {w_rare} vs common {w_the}");
        // Norms default to total weight.
        let s0 = c.set(0);
        assert!((s0.norm() - s0.total_weight().to_f64()).abs() < 1e-9);
    }

    #[test]
    fn frequency_order_places_rare_first() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        let h = b.add_relation(vec![
            toks(&["common", "rare1"]),
            toks(&["common", "rare2"]),
            toks(&["common"]),
        ]);
        let built = b.build().unwrap();
        let c = built.collection(h);
        // In every set containing it, "common" (freq 3) must sort after the
        // rare tokens (freq 1), i.e. have the largest rank.
        let (token, _) = built.element((built.universe_size() - 1) as u32);
        assert_eq!(token, "common");
        for set in c.iter() {
            assert!(set.ranks().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn norm_kinds() {
        let groups = vec![toks(&["a", "a", "b"])];
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        let card = b.add_relation_with_norm(groups.clone(), NormKind::Cardinality);
        let custom = b.add_relation_with_norm(groups.clone(), NormKind::Custom(vec![42.0]));
        let total = b.add_relation_with_norm(groups, NormKind::TotalWeight);
        let built = b.build().unwrap();
        assert_eq!(built.collection(card).set(0).norm(), 3.0);
        assert_eq!(built.collection(custom).set(0).norm(), 42.0);
        assert_eq!(built.collection(total).set(0).norm(), 3.0); // unit weights
    }

    #[test]
    fn custom_norm_arity_checked() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        b.add_relation_with_norm(vec![toks(&["a"])], NormKind::Custom(vec![1.0, 2.0]));
        let err = b.build().unwrap_err();
        assert!(
            matches!(&err, SsJoinError::InvalidInput(m) if m.contains("one value per group")),
            "{err:?}"
        );
    }

    #[test]
    fn empty_groups_and_relations() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        let h = b.add_relation(vec![vec![], toks(&["only"])]);
        let e = b.add_relation(vec![]);
        let built = b.build().unwrap();
        assert_eq!(built.collection(h).set(0).len(), 0);
        assert_eq!(built.collection(h).set(1).len(), 1);
        assert!(built.collection(e).is_empty());
    }

    #[test]
    fn query_encoder_round_trips_known_tokens() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Idf, ElementOrder::FrequencyAsc);
        let h = b.add_relation(vec![
            toks(&["a", "b", "b", "c"]),
            toks(&["b", "c"]),
            toks(&["a", "d"]),
        ]);
        let built = b.build().unwrap();
        let enc = built.query_encoder();
        assert_eq!(enc.universe_size(), built.universe_size());
        // Re-encoding the original groups reproduces the built sets exactly
        // (same ranks, same weights, same norms).
        let groups = vec![toks(&["a", "b", "b", "c"]), toks(&["b", "c"])];
        let again = enc.encode(&groups, NormKind::TotalWeight).unwrap();
        let c = built.collection(h);
        assert!(c.shares_universe(&again));
        for (i, set) in again.iter().enumerate() {
            let orig = c.set(i as u32);
            assert_eq!(set.ranks(), orig.ranks());
            assert_eq!(set.weights(), orig.weights());
            assert!((set.norm() - orig.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn query_encoder_drops_unseen_tokens() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        b.add_relation(vec![toks(&["a", "b"])]);
        let built = b.build().unwrap();
        let enc = built.query_encoder();
        // "z" was never interned; second occurrence of "a" was never seen.
        let coll = enc
            .encode(&[toks(&["a", "z", "a"])], NormKind::Cardinality)
            .unwrap();
        assert_eq!(coll.set(0).len(), 1); // only (a, 1) survives
        assert_eq!(coll.set(0).norm(), 3.0); // cardinality counts all tokens
        assert_eq!(enc.rank_of("z", 1), None);
        assert_eq!(enc.rank_of("a", 2), None);
        assert!(enc.rank_of("a", 1).is_some());
    }

    #[test]
    fn query_encoder_custom_norm_arity_checked() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        b.add_relation(vec![toks(&["a"])]);
        let enc = b.build().unwrap().query_encoder();
        let err = enc
            .encode(&[toks(&["a"])], NormKind::Custom(vec![1.0, 2.0]))
            .unwrap_err();
        assert!(matches!(err, SsJoinError::InvalidInput(_)), "{err:?}");
    }

    #[test]
    fn distinct_builds_have_distinct_tags() {
        let build = || {
            let mut b =
                SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
            let h = b.add_relation(vec![toks(&["a"])]);
            let built = b.build().unwrap();
            built.collection(h).clone()
        };
        let c1 = build();
        let c2 = build();
        assert_ne!(c1.universe_tag(), c2.universe_tag());
    }
}
