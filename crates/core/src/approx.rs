//! Opt-in approximate candidate generation: seeded MinHash/LSH sketches and
//! a recursive CPSJoin-style candidate tree.
//!
//! Everything else in this crate is exact — every executor emits exactly the
//! pairs satisfying the predicate. This module is the deliberate escape
//! hatch (ROADMAP item 3) for corpora where exact joins cannot meet a
//! deadline: it replaces *candidate generation* with a seeded LSH structure
//! in the style of CPSJoin ("Scalable and Robust Set Similarity Join",
//! arXiv 1707.06814) while keeping verification bit-identical — candidates
//! still flow through [`verify_overlap`] under the caller's kernel and
//! bitmap filter, so approximate mode changes *which pairs are considered*,
//! never how a pair is scored. Every emitted pair is therefore a true
//! qualifying pair (no false positives); the approximation only loses a
//! bounded, measured fraction of true pairs (recall < 1).
//!
//! # Sketch layout
//!
//! For each repetition ρ, a seeded **base hash** `b_ρ(token)` is drawn from
//! the `ssjoin-prng` generator once per token rank in the universe and
//! cached in a repetition-major table; the per-level families
//! `h_{ρ,k}(token)` are derived from the base by a cheap odd-constant
//! multiply/xor-shift scramble, so the hot argmin loops never re-seed the
//! generator. A set's MinHash coordinate at (ρ, k) is the **argmin token
//! rank** — the rank of the member token minimizing `h_{ρ,k}` — so a
//! coordinate is itself a token *contained in the set*, which is what makes
//! candidates provably share a token (see below). Coordinates are
//! precomputed into one contiguous arena (the PR 7 signature-block
//! discipline): repetition-major blocks of `n × MAX_LEVELS` entries,
//! `sketch[(ρ·n + id)·MAX_LEVELS + k]`, and the build also records each
//! set's leaf per repetition so self-join probes are a table lookup instead
//! of a hash-and-descend.
//!
//! # Recursion
//!
//! Per repetition, the indexed collection is split recursively: the root
//! partitions all non-empty sets by their level-0 coordinate, each child
//! partitions its bucket by the level-1 coordinate, and so on, until a
//! bucket fits [`LEAF_MAX`] or [`MAX_LEVELS`] is reached. The root always
//! splits — even a tiny collection hangs its leaves under at least one edge
//! — so every leaf sits below ≥ 1 edge. Edges are stored exactly, keyed by
//! `(parent node, coordinate)` in a hash map; no rolled-up path hashing that
//! could merge distinct paths. A probe set descends by computing its own
//! coordinates level by level; the leaf it reaches (if any) is its candidate
//! bucket. Two similar sets collide at a level with probability equal to
//! their Jaccard-style resemblance, so a leaf at level d captures a pair
//! with probability ≈ j^d per repetition.
//!
//! # Soundness (candidates ⊆ exact candidates)
//!
//! Every edge key on a root-to-leaf path is the argmin token of *every* set
//! in the subtree — a token each of them contains — and a probe only
//! traverses an edge whose key is its own argmin token. Probe and leaf
//! members therefore share at least one token, so approximate candidates
//! are a subset of the basic executor's candidate set (pairs with ≥ 1
//! shared element), and after exact verification the output is a subset of
//! the exact output with identical overlap values.
//!
//! # Recall model
//!
//! The repetition count adapts to the target: repetition 0 is built first,
//! its mean leaf level d̄ is measured, a margin resemblance j is derived
//! from the predicate threshold, and the number of repetitions L is chosen
//! so `1 − (1 − p)^L ≥ target_recall` (clamped to [`MAX_REPS`]), where p is
//! the expected leaf-collision probability of a matching pair assuming
//! match resemblance uniform on `[j, 1]` — see [`collision_probability`].
//! The model is a heuristic — recall is *measured* against exact ground
//! truth by the `ablation-approx` experiments panel rather than trusted
//! from the formula.
//!
//! # Determinism
//!
//! The tree is a pure function of (collection, seed): hashing is the seeded
//! `ssjoin-prng` PCG stream, ties break on token rank, and the recursion
//! orders buckets by coordinate value. Probing is read-only and the
//! candidate loop runs under [`run_chunked`]'s chunk-order concatenation,
//! so the output is identical across executors (approximate mode bypasses
//! the executor choice entirely) and across thread counts.

use ssjoin_prng::{Rng, StdRng};

use crate::budget::BudgetState;
use crate::error::{SsJoinError, SsJoinResult};
use crate::exec::{
    run_chunked, vec_bytes, Algorithm, ExecContext, JoinPair, JoinWorkspace, PlanChoice,
    WorkerScratch,
};
use crate::hash::FxHashMap;
use crate::kernel::verify_overlap;
use crate::predicate::OverlapPredicate;
use crate::set::{SetCollection, SetRef};
use crate::stats::{timed_phase, Phase, SsJoinStats};

/// Maximum tree depth (edges on a root-to-leaf path). Deeper levels sharpen
/// selectivity (candidates ~ j^depth) but cost recall per repetition.
const MAX_LEVELS: usize = 6;

/// Buckets at or below this size become leaves (candidate buckets). Small
/// leaves keep the junk-candidate factor low — every leaf mate of a probe is
/// verified, so leaf size directly multiplies verification work.
const LEAF_MAX: usize = 16;

/// Upper bound on repetitions the recall model may plan.
const MAX_REPS: usize = 16;

/// Sentinel for "no coordinate" (empty set) and "no root" (empty rep).
const EMPTY: u32 = u32::MAX;

/// Configuration of the opt-in approximate mode: the recall the seeded LSH
/// candidate generator should target, plus the hash-family seed.
///
/// A target of exactly `1.0` is valid and **inactive** — the run degenerates
/// to the exact pipeline, bit for bit. Targets in `(0, 1)` activate the
/// approximate generator; anything else is rejected with
/// [`SsJoinError::Config`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxSpec {
    /// Target recall in `(0, 1]`: the fraction of exact result pairs the
    /// approximate run aims to retain. `1.0` disables approximation.
    pub target_recall: f64,
    /// Seed of the per-(repetition, level) token hash families. Equal seeds
    /// (and equal configs) produce identical output on every platform,
    /// executor, and thread count.
    pub seed: u64,
}

impl ApproxSpec {
    /// Default hash-family seed used by [`ApproxSpec::new`].
    pub const DEFAULT_SEED: u64 = 0xA99C_0DE5_11AB_CD01;

    /// Spec targeting `target_recall` under the default seed.
    pub fn new(target_recall: f64) -> Self {
        Self {
            target_recall,
            seed: Self::DEFAULT_SEED,
        }
    }

    /// Replace the hash-family seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Reject targets outside `(0, 1]` (including NaN).
    pub fn validate(&self) -> SsJoinResult<()> {
        if self.target_recall > 0.0 && self.target_recall <= 1.0 {
            Ok(())
        } else {
            Err(SsJoinError::Config(format!(
                "approximate target recall must be in (0, 1], got {}",
                self.target_recall
            )))
        }
    }

    /// True when the spec actually approximates (`target_recall < 1`); a
    /// target of exactly 1.0 keeps the exact pipeline.
    pub fn is_active(&self) -> bool {
        self.target_recall < 1.0
    }

    /// Target recall in thousandths — the `Eq`-friendly form recorded in
    /// [`PlanChoice::approx_recall_milli`].
    pub fn recall_milli(&self) -> u16 {
        (self.target_recall.clamp(0.0, 1.0) * 1000.0).round() as u16
    }
}

/// Per-level odd multipliers deriving the level hash families from a
/// token's base hash (one entry per tree level).
const LEVEL_MIX: [u64; MAX_LEVELS] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0xFF51_AFD7_ED55_8CCD,
    0xC4CE_B9FE_1A85_EC53,
    0x2545_F491_4F6C_DD1D,
];

/// Seeded base hash of one token under repetition `rep`: the mixed key seeds
/// the workspace PCG (`ssjoin-prng`) and one draw is the hash value.
/// Deterministic across platforms by the generator's contract. Computed once
/// per (repetition, rank) into the sketch's base table; the per-level
/// families are derived from it by [`level_hash`], so the inner argmin loops
/// never touch the generator.
#[inline]
fn base_hash(seed: u64, rep: u32, rank: u32) -> u64 {
    let mix = seed
        ^ u64::from(rep).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(rank).wrapping_mul(0x1656_67B1_9E37_79F9);
    StdRng::seed_from_u64(mix).next_u64()
}

/// Hash of family (repetition, level) for a token with base hash `base`:
/// a multiply/xor-shift scramble by the level's odd constant. Bijective in
/// `base`, so distinct tokens never collide within a level.
#[inline]
fn level_hash(base: u64, level: usize) -> u64 {
    let mut h = base.wrapping_mul(LEVEL_MIX[level]);
    h ^= h >> 32;
    h
}

/// The member token rank minimizing the level-`level` family hash, reading
/// base hashes from `bases` (falling back to [`base_hash`] for ranks beyond
/// the table, which cannot happen for sets of the indexed universe). Ties
/// break toward the smaller rank so the coordinate is unique. `EMPTY` for an
/// empty set.
fn argmin_rank(bases: &[u64], seed: u64, rep: u32, level: usize, ranks: &[u32]) -> u32 {
    let mut best = (u64::MAX, EMPTY);
    for &rank in ranks {
        let base = bases
            .get(rank as usize)
            .copied()
            .unwrap_or_else(|| base_hash(seed, rep, rank));
        let h = level_hash(base, level);
        if (h, rank) < best {
            best = (h, rank);
        }
    }
    best.1
}

/// The LSH candidate structure over one indexed collection: the contiguous
/// coordinate arena plus, per repetition, the recursive partition tree.
/// Built once (per [`crate::CorpusIndex`] rebuild, or per run into the
/// workspace pool) and probed read-only; all buffers clear-and-reuse.
#[derive(Debug, Default)]
pub(crate) struct ApproxSketch {
    /// Hash-family seed the sketch was built with.
    pub(crate) seed: u64,
    /// Target recall (thousandths) the repetition count was planned for.
    pub(crate) recall_milli: u16,
    /// Repetitions actually built (≥ 1 after a build).
    pub(crate) reps: usize,
    /// Indexed collection size the sketch was built over.
    n: usize,
    /// Element-universe size of the indexed collection (base-table row
    /// length).
    universe: usize,
    /// Repetition-major coordinate arena:
    /// `sketch[(rep · n + id) · MAX_LEVELS + level]`.
    sketch: Vec<u32>,
    /// Repetition-major per-token base hashes:
    /// `rank_base[rep · universe + rank]`. Probes of indexed-universe sets
    /// read here instead of re-seeding the generator per token.
    rank_base: Vec<u64>,
    /// Repetition-major leaf lookup: `leaf_of[rep · n + id]` is the leaf
    /// node holding indexed set `id` (`EMPTY` for empty sets / empty reps).
    /// Lets a self-join probe skip hashing and tree descent entirely.
    leaf_of: Vec<u32>,
    /// Root node per repetition (`EMPTY` when the rep indexes nothing).
    roots: Vec<u32>,
    /// Node table: a leaf holds `(start, end)` into `leaf_sets`; internal
    /// nodes hold `(EMPTY, 0)`.
    nodes: Vec<(u32, u32)>,
    /// Exact edges: `(parent << 32) | coordinate` → child node.
    edges: FxHashMap<u64, u32>,
    /// Flat arena of leaf membership lists.
    leaf_sets: Vec<u32>,
    /// Mean leaf level of repetition 0 (weighted by bucket size).
    mean_level: f64,
    /// Build scratch: the id permutation the recursion partitions.
    order: Vec<u32>,
}

impl ApproxSketch {
    /// Coordinate of set `id` at (rep, level).
    #[inline]
    fn coord(&self, rep: usize, id: u32, level: usize) -> u32 {
        self.sketch[(rep * self.n + id as usize) * MAX_LEVELS + level]
    }

    fn push_internal(&mut self) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push((EMPTY, 0));
        idx
    }

    fn push_leaf(&mut self, rep: usize, members: &[u32]) -> u32 {
        let start = self.leaf_sets.len() as u32;
        self.leaf_sets.extend_from_slice(members);
        let idx = self.nodes.len() as u32;
        for &id in members {
            self.leaf_of[rep * self.n + id as usize] = idx;
        }
        self.nodes.push((start, self.leaf_sets.len() as u32));
        idx
    }

    /// Fill repetition `rep`'s base-hash row (one generator draw per rank in
    /// the universe).
    fn base_rep(&mut self, rep: u32) {
        self.rank_base.reserve(self.universe);
        for rank in 0..self.universe as u32 {
            self.rank_base.push(base_hash(self.seed, rep, rank));
        }
    }

    /// Append repetition `rep`'s coordinate block to the arena: one pass per
    /// set computing the argmin of every level at once from cached base
    /// hashes.
    fn sketch_rep(&mut self, s: &SetCollection, rep: u32) {
        let bases = &self.rank_base[rep as usize * self.universe..];
        self.sketch.reserve(self.n * MAX_LEVELS);
        for set in s.iter() {
            let mut best = [(u64::MAX, EMPTY); MAX_LEVELS];
            for &rank in set.ranks() {
                let base = bases
                    .get(rank as usize)
                    .copied()
                    .unwrap_or_else(|| base_hash(self.seed, rep, rank));
                for (level, slot) in best.iter_mut().enumerate() {
                    let h = level_hash(base, level);
                    if (h, rank) < *slot {
                        *slot = (h, rank);
                    }
                }
            }
            self.sketch.extend(best.iter().map(|&(_, rank)| rank));
        }
    }

    /// Build repetition `rep`'s tree; returns `(members, Σ member·level)`
    /// over its leaves for the mean-leaf-level measurement.
    fn build_rep(&mut self, rep: usize) -> (u64, u64) {
        self.leaf_of.resize((rep + 1) * self.n, EMPTY);
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend((0..self.n as u32).filter(|&id| self.coord(rep, id, 0) != EMPTY));
        let mut acc = (0u64, 0u64);
        if order.is_empty() {
            self.roots.push(EMPTY);
        } else {
            // The root always splits (never a leaf), so every leaf sits
            // under at least one edge and candidates provably share a token.
            let root = self.push_internal();
            self.roots.push(root);
            self.split(rep, root, 0, &mut order, &mut acc);
        }
        self.order = order;
        acc
    }

    /// Partition `bucket` by its coordinate at `level`, hanging a child —
    /// leaf or recursively split internal node — under `node` per group.
    fn split(
        &mut self,
        rep: usize,
        node: u32,
        level: usize,
        bucket: &mut [u32],
        acc: &mut (u64, u64),
    ) {
        bucket.sort_unstable_by_key(|&id| self.coord(rep, id, level));
        let child_level = level + 1;
        let mut start = 0usize;
        while start < bucket.len() {
            let key = self.coord(rep, bucket[start], level);
            let mut end = start + 1;
            while end < bucket.len() && self.coord(rep, bucket[end], level) == key {
                end += 1;
            }
            let leaf = end - start <= LEAF_MAX || child_level == MAX_LEVELS;
            let child = if leaf {
                acc.0 += (end - start) as u64;
                acc.1 += ((end - start) * child_level) as u64;
                self.push_leaf(rep, &bucket[start..end])
            } else {
                self.push_internal()
            };
            self.edges
                .insert((u64::from(node) << 32) | u64::from(key), child);
            if !leaf {
                self.split(rep, child, child_level, &mut bucket[start..end], acc);
            }
            start = end;
        }
    }

    /// (Re)build the sketch over `s` for `spec`, reusing every buffer's
    /// capacity. Repetition 0 calibrates the repetition count; the budget is
    /// checked between repetitions so a cancelled run stops building.
    pub(crate) fn build(
        &mut self,
        s: &SetCollection,
        pred: &OverlapPredicate,
        spec: &ApproxSpec,
        budget: &BudgetState,
    ) {
        self.seed = spec.seed;
        self.recall_milli = spec.recall_milli();
        self.n = s.len();
        self.universe = s.universe_size();
        self.sketch.clear();
        self.rank_base.clear();
        self.leaf_of.clear();
        self.roots.clear();
        self.nodes.clear();
        self.edges.clear();
        self.leaf_sets.clear();
        self.base_rep(0);
        self.sketch_rep(s, 0);
        let (members, level_sum) = self.build_rep(0);
        self.mean_level = if members == 0 {
            1.0
        } else {
            level_sum as f64 / members as f64
        };
        let reps = planned_reps(
            spec.target_recall,
            self.mean_level,
            resemblance_hint(s, pred),
        );
        for rep in 1..reps {
            if !budget.proceed() {
                break;
            }
            self.base_rep(rep as u32);
            self.sketch_rep(s, rep as u32);
            self.build_rep(rep);
        }
        self.reps = self.roots.len();
    }

    /// Descend the tree of repetition `rep` with `probe`'s own coordinates;
    /// the reached leaf (if any) is the candidate bucket.
    pub(crate) fn probe(&self, probe: SetRef<'_>, rep: usize) -> Option<&[u32]> {
        let mut node = self.roots[rep];
        if node == EMPTY {
            return None;
        }
        let ranks = probe.ranks();
        if ranks.is_empty() {
            return None;
        }
        let bases = &self.rank_base[rep * self.universe..(rep + 1) * self.universe];
        for level in 0..MAX_LEVELS {
            let (start, end) = self.nodes[node as usize];
            if start != EMPTY {
                return Some(&self.leaf_sets[start as usize..end as usize]);
            }
            let key = argmin_rank(bases, self.seed, rep as u32, level, ranks);
            node = *self
                .edges
                .get(&((u64::from(node) << 32) | u64::from(key)))?;
        }
        let (start, end) = self.nodes[node as usize];
        // Nodes at MAX_LEVELS are leaves by construction.
        (start != EMPTY).then(|| &self.leaf_sets[start as usize..end as usize])
    }

    /// The leaf bucket holding indexed set `id` in repetition `rep` — the
    /// self-join fast path. Equivalent to [`ApproxSketch::probe`] with the
    /// set's own `SetRef` (the descent follows the set's own coordinates,
    /// which is exactly the path the build hung it under), but a single
    /// table lookup instead of hashing every token per level.
    pub(crate) fn own_leaf(&self, id: u32, rep: usize) -> Option<&[u32]> {
        let node = self.leaf_of[rep * self.n + id as usize];
        (node != EMPTY).then(|| {
            let (start, end) = self.nodes[node as usize];
            &self.leaf_sets[start as usize..end as usize]
        })
    }

    /// Heap bytes currently reserved by the sketch's pooled buffers.
    pub(crate) fn bytes_reserved(&self) -> u64 {
        vec_bytes(&self.sketch)
            + vec_bytes(&self.rank_base)
            + vec_bytes(&self.leaf_of)
            + vec_bytes(&self.roots)
            + vec_bytes(&self.nodes)
            + vec_bytes(&self.leaf_sets)
            + vec_bytes(&self.order)
            // Hash-map entries: key + value + control byte, rounded up.
            + self.edges.capacity() as u64 * 16
    }
}

/// Per-pair resemblance hint derived from the predicate: the required
/// overlap at the collection's mid norm, as a fraction of that norm, mapped
/// through the two-sided containment→resemblance identity `j = f/(2−f)`.
/// Heuristic by design — it only calibrates the repetition count; recall is
/// measured, not assumed.
fn resemblance_hint(s: &SetCollection, pred: &OverlapPredicate) -> f64 {
    let Some((lo, hi)) = s.norm_range() else {
        return 0.5;
    };
    let mid = 0.5 * (lo + hi);
    if !mid.is_finite() || mid <= 0.0 {
        return 0.5;
    }
    let frac = (pred.required_overlap(mid, mid).to_f64() / mid).clamp(0.05, 0.98);
    (frac / (2.0 - frac)).clamp(0.05, 0.98)
}

/// Expected per-repetition leaf-collision probability of a matching pair.
/// A pair of resemblance x collides at a depth-d leaf with probability
/// ≈ x^d; matching pairs are assumed uniform on `[j, 1]` (from the
/// predicate margin up to exact duplicates), giving
/// `E[x^d] = (1 − j^{d+1}) / ((d + 1)(1 − j))`. A point estimate at the
/// margin alone would be far too pessimistic — at low thresholds it plans
/// the full repetition cap even though most real matches are near-duplicates
/// that collide almost every repetition.
fn collision_probability(j: f64, mean_level: f64) -> f64 {
    let d = mean_level.max(1.0);
    if j >= 1.0 - 1e-9 {
        return 0.95;
    }
    ((1.0 - j.powf(d + 1.0)) / ((d + 1.0) * (1.0 - j))).clamp(0.02, 0.95)
}

/// Repetitions needed for `1 − (1 − p)^L ≥ target` under the
/// [`collision_probability`] estimate `p`, clamped to `[1, MAX_REPS]`.
fn planned_reps(target: f64, mean_level: f64, j: f64) -> usize {
    let p = collision_probability(j, mean_level);
    let l = ((1.0 - target).max(f64::MIN_POSITIVE).ln() / (1.0 - p).ln()).ceil();
    (l as usize).clamp(1, MAX_REPS)
}

/// The candidate-generation + verification loop: per probe set, gather the
/// leaf buckets of every repetition (stamp-deduplicated), then verify each
/// candidate through the unmodified exact tail — the same bitmap prune,
/// [`verify_overlap`] kernel, and budget checkpoints the prefix family runs.
#[allow(clippy::too_many_arguments)]
fn candidate_phase(
    r: &SetCollection,
    s: &SetCollection,
    sketch: &ApproxSketch,
    pred: &OverlapPredicate,
    ctx: &ExecContext,
    budget: &BudgetState,
    workers: &mut Vec<WorkerScratch>,
    out: &mut Vec<JoinPair>,
) -> SsJoinStats {
    // Self-joins (probe collection IS the indexed collection) resolve each
    // probe's leaf by table lookup instead of re-hashing its tokens; the
    // leaves reached are identical, only cheaper to find.
    let same = std::ptr::eq(r, s);
    run_chunked(r.len(), ctx.threads, workers, out, |range, scratch| {
        let mut stats = SsJoinStats::default();
        scratch.stamp.clear();
        scratch.stamp.resize(s.len(), u32::MAX);
        scratch.candidates.clear();
        let stamp = &mut scratch.stamp;
        let candidates = &mut scratch.candidates;
        let pairs = &mut scratch.pairs;
        for rid in range {
            debug_assert_ne!(
                rid as u32,
                u32::MAX,
                "rid collides with the stamp sentinel; collection exceeds the id space"
            );
            let out_before = pairs.len();
            let rset = r.set(rid as u32);
            if rset.is_empty() {
                continue;
            }
            candidates.clear();
            for rep in 0..sketch.reps {
                let leaf = if same {
                    sketch.own_leaf(rid as u32, rep)
                } else {
                    sketch.probe(rset, rep)
                };
                let Some(leaf) = leaf else {
                    continue;
                };
                for &sid in leaf {
                    stats.join_tuples += 1;
                    if stamp[sid as usize] != rid as u32 {
                        stamp[sid as usize] = rid as u32;
                        candidates.push(sid);
                    }
                }
            }
            stats.candidate_pairs += candidates.len() as u64;
            if candidates.is_empty() {
                continue;
            }
            candidates.sort_unstable();
            if !budget.checkpoint(candidates.len() as u64, 0) {
                break;
            }
            for &sid in candidates.iter() {
                let sset = s.set(sid);
                let required = pred.required_overlap(rset.norm(), sset.norm());
                if ctx.bitmap_filter {
                    stats.bitmap_probes += 1;
                    if rset.wide_overlap_bound(sset, ctx.signature_width) < required {
                        stats.bitmap_prunes += 1;
                        continue; // signature proves the merge can't reach the threshold
                    }
                }
                stats.verified_pairs += 1;
                if let Some(overlap) = verify_overlap(ctx.kernel, rset, sset, required, &mut stats)
                {
                    pairs.push(JoinPair {
                        r: rid as u32,
                        s: sid,
                        overlap,
                    });
                }
            }
            if !budget.checkpoint(0, (pairs.len() - out_before) as u64) {
                break;
            }
        }
        stats
    })
}

/// The [`PlanChoice`] record of an approximate run: the verification-side
/// knobs come from the context verbatim (approximation replaces candidate
/// generation only), `cost` is 0 because the cost model never priced the
/// run, and the recall target is stamped so the plan is distinguishable
/// from any exact configuration.
fn approx_plan(algorithm: Algorithm, ctx: &ExecContext, spec: &ApproxSpec) -> PlanChoice {
    PlanChoice {
        algorithm,
        kernel: ctx.kernel,
        bitmap_filter: ctx.bitmap_filter,
        signature_width: ctx.signature_width,
        threads: ctx.threads,
        cost: 0,
        partitions: 0,
        approx_recall_milli: Some(spec.recall_milli()),
    }
}

/// Execute an approximate join: build (or rebuild) the sketch over `s` into
/// the workspace pool, generate candidates by tree descent, verify exactly.
/// `algorithm` is the caller's configured algorithm — approximation bypasses
/// the executor choice, so it is echoed back (with [`Algorithm::Auto`]
/// resolving to the inline verification shape this loop actually is).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    r: &SetCollection,
    s: &SetCollection,
    pred: &OverlapPredicate,
    algorithm: Algorithm,
    ctx: &ExecContext,
    spec: &ApproxSpec,
    budget: &BudgetState,
    ws: &mut JoinWorkspace,
) -> (SsJoinStats, Algorithm) {
    let mut stats = SsJoinStats::default();
    let mut sketch = ws.approx.take().unwrap_or_default();
    if budget.proceed() {
        // Sketch + tree construction is the prefix-filter analog of this
        // pipeline, and is timed as such.
        timed_phase(&mut stats, ctx.stats, Phase::PrefixFilter, |_| {
            sketch.build(s, pred, spec, budget);
        });
    }
    let inner = run_built(r, s, &sketch, pred, ctx, budget, ws);
    stats.merge(&inner);
    stats.approx_reps = sketch.reps as u64;
    ws.approx = Some(sketch);
    let used = if algorithm == Algorithm::Auto {
        Algorithm::Inline
    } else {
        algorithm
    };
    stats.plan = Some(approx_plan(used, ctx, spec));
    (stats, used)
}

/// Probe an already-built sketch (the [`crate::CorpusIndex`] path: the
/// sketch was built once at index (re)build time, so warm probes run the
/// candidate loop only — allocation-free on a warmed workspace).
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_built(
    r: &SetCollection,
    s: &SetCollection,
    sketch: &ApproxSketch,
    pred: &OverlapPredicate,
    algorithm: Algorithm,
    ctx: &ExecContext,
    spec: &ApproxSpec,
    budget: &BudgetState,
    ws: &mut JoinWorkspace,
) -> (SsJoinStats, Algorithm) {
    let mut stats = run_built(r, s, sketch, pred, ctx, budget, ws);
    stats.approx_reps = sketch.reps as u64;
    let used = if algorithm == Algorithm::Auto {
        Algorithm::Inline
    } else {
        algorithm
    };
    stats.plan = Some(approx_plan(used, ctx, spec));
    (stats, used)
}

/// The timed candidate loop over a finished sketch.
fn run_built(
    r: &SetCollection,
    s: &SetCollection,
    sketch: &ApproxSketch,
    pred: &OverlapPredicate,
    ctx: &ExecContext,
    budget: &BudgetState,
    ws: &mut JoinWorkspace,
) -> SsJoinStats {
    let mut stats = SsJoinStats::default();
    if !budget.proceed() {
        return stats;
    }
    let JoinWorkspace { workers, out, .. } = ws;
    let inner = timed_phase(&mut stats, ctx.stats, Phase::SsJoin, |_| {
        candidate_phase(r, s, sketch, pred, ctx, budget, workers, out)
    });
    stats.merge(&inner);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SsJoinInputBuilder, WeightScheme};
    use crate::order::ElementOrder;

    fn build_collection(groups: Vec<Vec<String>>) -> SetCollection {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        let h = b.add_relation(groups);
        b.build().unwrap().collection(h).clone()
    }

    fn groups(n: usize, vocab: usize) -> Vec<Vec<String>> {
        (0..n)
            .map(|i| {
                (0..(3 + i % 5))
                    .map(|j| format!("t{}", (i * 7 + j * 13) % vocab))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn spec_validation() {
        assert!(ApproxSpec::new(0.9).validate().is_ok());
        assert!(ApproxSpec::new(1.0).validate().is_ok());
        assert!(!ApproxSpec::new(1.0).is_active());
        assert!(ApproxSpec::new(0.999).is_active());
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(ApproxSpec::new(bad).validate().is_err(), "{bad}");
        }
        assert_eq!(ApproxSpec::new(0.9).recall_milli(), 900);
    }

    #[test]
    fn token_hash_is_deterministic_and_family_dependent() {
        assert_eq!(base_hash(1, 2, 4), base_hash(1, 2, 4));
        assert_ne!(base_hash(1, 2, 4), base_hash(2, 2, 4), "seed must matter");
        assert_ne!(base_hash(1, 2, 4), base_hash(1, 3, 4), "rep must matter");
        assert_ne!(base_hash(1, 2, 4), base_hash(1, 2, 5), "rank must matter");
        let b = base_hash(1, 2, 4);
        for k in 1..MAX_LEVELS {
            assert_ne!(level_hash(b, 0), level_hash(b, k), "level must matter");
        }
    }

    #[test]
    fn argmin_is_a_member_token() {
        let ranks = [3u32, 17, 42, 99];
        // Exercise both the cached-base path and the fallback (empty table).
        let bases: Vec<u64> = (0..100).map(|rank| base_hash(7, 0, rank)).collect();
        for level in 0..MAX_LEVELS {
            let m = argmin_rank(&bases, 7, 0, level, &ranks);
            assert!(ranks.contains(&m));
            assert_eq!(m, argmin_rank(&[], 7, 0, level, &ranks));
        }
        assert_eq!(argmin_rank(&bases, 7, 0, 0, &[]), EMPTY);
    }

    #[test]
    fn planned_reps_monotone_in_target() {
        let low = planned_reps(0.5, 2.0, 0.7);
        let high = planned_reps(0.95, 2.0, 0.7);
        assert!(high >= low, "{high} >= {low}");
        assert!(low >= 1 && high <= MAX_REPS);
    }

    #[test]
    fn sketch_leaves_partition_under_shared_tokens() {
        let c = build_collection(groups(120, 23));
        let pred = OverlapPredicate::two_sided(0.7);
        let spec = ApproxSpec::new(0.9);
        let budget_cfg = crate::budget::ExecBudget::default();
        let budget = BudgetState::new(&budget_cfg, None);
        let mut sketch = ApproxSketch::default();
        sketch.build(&c, &pred, &spec, &budget);
        assert!(sketch.reps >= 1);
        // Every set finds its own leaf and the leaf contains the set itself;
        // every leaf-mate shares at least one token with the probe.
        for id in 0..c.len() as u32 {
            let set = c.set(id);
            let leaf = sketch.probe(set, 0).expect("own leaf must be reachable");
            assert!(leaf.contains(&id), "set {id} missing from its own leaf");
            // The self-join fast path must resolve the identical bucket.
            assert_eq!(sketch.own_leaf(id, 0), Some(leaf));
            for &mate in leaf {
                let mset = c.set(mate);
                let shares = set
                    .ranks()
                    .iter()
                    .any(|rank| mset.ranks().binary_search(rank).is_ok());
                assert!(shares, "leaf mates {id}/{mate} share no token");
            }
        }
    }

    #[test]
    fn rebuild_reuses_capacity_and_is_deterministic() {
        let c = build_collection(groups(80, 19));
        let pred = OverlapPredicate::two_sided(0.8);
        let spec = ApproxSpec::new(0.85);
        let budget_cfg = crate::budget::ExecBudget::default();
        let budget = BudgetState::new(&budget_cfg, None);
        let mut a = ApproxSketch::default();
        a.build(&c, &pred, &spec, &budget);
        let first = (a.roots.clone(), a.nodes.clone(), a.leaf_sets.clone());
        a.build(&c, &pred, &spec, &budget);
        assert_eq!(
            first,
            (a.roots.clone(), a.nodes.clone(), a.leaf_sets.clone())
        );
        let mut b = ApproxSketch::default();
        b.build(&c, &pred, &spec, &budget);
        assert_eq!(first, (b.roots, b.nodes, b.leaf_sets));
        assert!(a.bytes_reserved() > 0);
    }

    #[test]
    fn different_seeds_change_the_tree() {
        let c = build_collection(groups(100, 17));
        let pred = OverlapPredicate::two_sided(0.8);
        let budget_cfg = crate::budget::ExecBudget::default();
        let budget = BudgetState::new(&budget_cfg, None);
        let mut a = ApproxSketch::default();
        a.build(&c, &pred, &ApproxSpec::new(0.9), &budget);
        let mut b = ApproxSketch::default();
        b.build(&c, &pred, &ApproxSpec::new(0.9).with_seed(12345), &budget);
        assert_ne!(a.sketch, b.sketch, "seed must steer the hash families");
    }

    #[test]
    fn empty_collection_probes_nothing() {
        let mut b = SsJoinInputBuilder::new(WeightScheme::Unweighted, ElementOrder::FrequencyAsc);
        let h = b.add_relation(vec![vec!["x".to_string()]]);
        let empty = b.add_relation(Vec::new());
        let built = b.build().unwrap();
        let probe_c = built.collection(h).clone();
        let c = built.collection(empty).clone();
        let pred = OverlapPredicate::absolute(1.0);
        let budget_cfg = crate::budget::ExecBudget::default();
        let budget = BudgetState::new(&budget_cfg, None);
        let mut sketch = ApproxSketch::default();
        sketch.build(&c, &pred, &ApproxSpec::new(0.9), &budget);
        for rep in 0..sketch.reps {
            assert!(sketch.probe(probe_c.set(0), rep).is_none());
        }
    }
}
