//! Fast, non-cryptographic hashing for hot hash tables.
//!
//! The inverted-index and candidate-pair tables are the hottest data
//! structures of every SSJoin executor, and their keys are small integers.
//! SipHash (the standard-library default) is wasteful for that workload, so
//! this module provides an FxHash-style multiply-xor hasher (the algorithm
//! used by rustc, reimplemented here because the crate has no external
//! hashing dependency).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher in the style of rustc's FxHasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one((3u32, 7u32)), hash_one((3u32, 7u32)));
    }

    #[test]
    fn discriminates_nearby_keys() {
        // Not a strong guarantee, but the pairs the executors hash must not
        // collide trivially.
        let h: std::collections::HashSet<u64> = (0u64..10_000).map(hash_one).collect();
        assert_eq!(h.len(), 10_000);
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m[&(1, 2)], 3);
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn byte_strings_with_tails() {
        assert_ne!(hash_one("abcdefgh"), hash_one("abcdefg"));
        assert_ne!(hash_one(b"a".as_slice()), hash_one(b"b".as_slice()));
        assert_ne!(hash_one(b"".as_slice()), hash_one(b"\0".as_slice()));
    }
}
