//! Threshold-aware overlap kernels.
//!
//! Candidate verification — computing `wt(r ∩ s)` and comparing it against
//! the predicate's required overlap — dominates SSJoin runtime once the
//! prefix filter has pruned the candidate space. These kernels fuse the
//! HAVING comparison into the merge itself: they return `Some(overlap)`
//! exactly when `overlap >= required`, and may return `None` *early*, as
//! soon as the accumulated weight plus the smallest remaining suffix weight
//! provably cannot reach `required`.
//!
//! The early-exit bound: at merge state `(i, j)` over sets `a` and `b`, any
//! element still matchable lies in `a[i..] ∩ b[j..]`, whose weight is at
//! most `min(suffix_a[i], suffix_b[j])` — the precomputed suffix cumulative
//! weights of [`crate::set::SetRef`]. If
//! `acc + min(suffix_a[i], suffix_b[j]) < required`, no continuation of the
//! merge reaches the threshold, so the pair is rejected without touching the
//! remaining elements. The exit fires only on rejection; an accepted pair is
//! merged to completion so the reported overlap is exact.
//!
//! Three kernels are offered via [`OverlapKernel`]:
//! - [`OverlapKernel::Linear`] — full two-pointer merge, then the threshold
//!   comparison. The correctness oracle.
//! - [`OverlapKernel::EarlyExit`] — two-pointer merge with the suffix-weight
//!   bound checked each step.
//! - [`OverlapKernel::Adaptive`] (default) — early-exit merge, switching to a
//!   galloping probe of the longer side when the length ratio exceeds
//!   [`GALLOP_CROSSOVER`], for the skewed candidate pairs the
//!   frequency-ascending order `O` produces.
//!
//! All three agree bit-for-bit on acceptance and on the returned overlap;
//! they differ only in how much work rejection costs. The counters
//! `merge_steps`, `early_exits`, and `gallop_probes` in
//! [`crate::SsJoinStats`] make the difference observable.

use crate::set::SetRef;
use crate::stats::SsJoinStats;
use crate::weight::Weight;

/// Overlap kernel used for candidate verification, selected via
/// [`crate::ExecContext::with_kernel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum OverlapKernel {
    /// Full linear merge followed by the threshold comparison; never exits
    /// early. The correctness oracle and the paper's literal `Overlap`
    /// aggregate.
    Linear,
    /// Linear merge that abandons a pair as soon as the suffix-weight bound
    /// proves it cannot reach the required overlap.
    EarlyExit,
    /// Early-exit merge that switches to galloping (exponential probe plus
    /// binary search) on the longer side when the candidate pair's length
    /// ratio is at least [`GALLOP_CROSSOVER`].
    #[default]
    Adaptive,
}

impl OverlapKernel {
    /// Kernel name as used by the experiments harness (`linear`,
    /// `early-exit`, `adaptive`).
    pub fn name(self) -> &'static str {
        match self {
            OverlapKernel::Linear => "linear",
            OverlapKernel::EarlyExit => "early-exit",
            OverlapKernel::Adaptive => "adaptive",
        }
    }
}

/// Length ratio (longer / shorter) at which [`OverlapKernel::Adaptive`]
/// switches from stepwise merging to galloping the longer side.
pub const GALLOP_CROSSOVER: usize = 8;

/// Modeled cost of galloping a pair with mean merged length `avg_len`, in
/// abstract element touches: the short side is at most `avg_len /`
/// [`GALLOP_CROSSOVER`] elements (galloping only runs past that skew), and
/// each probe pays an exponential search plus a binary search over the long
/// side — about `2·(log₂ long + 1)` rank comparisons.
pub(crate) fn gallop_cost_model(avg_len: f64) -> f64 {
    let short = (avg_len / GALLOP_CROSSOVER as f64).max(1.0);
    short * (avg_len.max(2.0).log2() + 1.0) * 2.0
}

/// Modeled per-candidate verification cost of each kernel, in abstract
/// element touches — the same unit as the planner's join-tuple counts.
///
/// * `avg_len` — mean merged length of a candidate pair;
/// * `prefix_fraction` — estimated prefix selectivity in `[0, 1]`. Small
///   prefixes mean a selective predicate whose suffix-weight bound fires
///   early, so the early-exit kernels approach a fraction of the full merge;
///   a fraction near 1 means most merges run (nearly) to completion;
/// * `gallop_skew` — estimated probability (in `[0, 1]`) that a candidate
///   pair's length ratio reaches [`GALLOP_CROSSOVER`], taken from the
///   collections' length histograms.
///
/// The shapes mirror the kernels above: [`OverlapKernel::Linear`] always
/// walks the full merge; [`OverlapKernel::EarlyExit`] pays a floor (the
/// bound must accumulate before it can fire) plus the fraction the predicate
/// lets through; [`OverlapKernel::Adaptive`] behaves like early-exit on
/// balanced pairs and like [`gallop_cost_model`] on skewed ones.
pub(crate) fn verify_cost_model(
    kernel: OverlapKernel,
    avg_len: f64,
    prefix_fraction: f64,
    gallop_skew: f64,
) -> f64 {
    let linear = avg_len.max(1.0);
    let rho = prefix_fraction.clamp(0.0, 1.0);
    let early = linear * (0.25 + 0.75 * rho);
    match kernel {
        OverlapKernel::Linear => linear,
        OverlapKernel::EarlyExit => early,
        OverlapKernel::Adaptive => {
            let sigma = gallop_skew.clamp(0.0, 1.0);
            let gallop = gallop_cost_model(avg_len);
            (1.0 - sigma) * early + sigma * gallop.min(early)
        }
    }
}

/// Verify one candidate pair with the selected kernel: returns
/// `Some(wt(a ∩ b))` iff the overlap reaches `required`, updating the
/// kernel counters in `stats`.
#[inline]
pub fn verify_overlap(
    kernel: OverlapKernel,
    a: SetRef<'_>,
    b: SetRef<'_>,
    required: Weight,
    stats: &mut SsJoinStats,
) -> Option<Weight> {
    match kernel {
        OverlapKernel::Linear => {
            let ov = merge_full(a, b, &mut stats.merge_steps);
            (ov >= required).then_some(ov)
        }
        OverlapKernel::EarlyExit => overlap_at_least(a, b, required, stats),
        OverlapKernel::Adaptive => {
            let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            if !short.is_empty() && long.len() / short.len() >= GALLOP_CROSSOVER {
                overlap_gallop(short, long, required, stats)
            } else {
                overlap_at_least(a, b, required, stats)
            }
        }
    }
}

/// Full two-pointer merge of two rank-sorted sets, counting each advance in
/// `steps`. Backing for [`SetRef::overlap`] and [`OverlapKernel::Linear`].
///
/// Split into two branch-light passes over the CSR pools:
///
/// 1. a **counting pass** over the rank slices alone — flag-arithmetic
///    advances (`i += (x <= y)`, `j += (y <= x)`) with no weight loads, so
///    the loop body is three compares and three adds the compiler keeps in
///    registers with no unpredictable branch;
/// 2. a **weight-accumulation pass** that re-walks the ranks summing the
///    weights of the shared elements, entered only when the counting pass
///    found any matches and stopping as soon as all of them are consumed.
///
/// The counting pass advances the cursors exactly as the classic three-way
/// merge does (less → left, greater → right, equal → both) and ticks
/// `steps` once per iteration, so the reported `merge_steps` are identical
/// to the pre-split kernel's.
pub(crate) fn merge_full(a: SetRef<'_>, b: SetRef<'_>, steps: &mut u64) -> Weight {
    let ar = a.ranks();
    let br = b.ranks();
    let (mut i, mut j) = (0usize, 0usize);
    let mut matches = 0usize;
    while i < ar.len() && j < br.len() {
        *steps += 1;
        let (x, y) = (ar[i], br[j]);
        matches += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    if matches == 0 {
        return Weight::ZERO;
    }
    accumulate_matches(a, b, matches)
}

/// Weight-accumulation pass of [`merge_full`]: sum the weights of the
/// `matches` elements shared by `a` and `b`. Relies on the shared-universe
/// invariant (equal ranks carry equal weights on both sides) and stops the
/// moment the last match is consumed, so disjoint tails are never touched.
fn accumulate_matches(a: SetRef<'_>, b: SetRef<'_>, matches: usize) -> Weight {
    let (ar, aw) = (a.ranks(), a.weights());
    let (br, bw) = (b.ranks(), b.weights());
    let (mut i, mut j) = (0usize, 0usize);
    let mut acc = Weight::ZERO;
    let mut left = matches;
    while left > 0 {
        let (x, y) = (ar[i], br[j]);
        if x == y {
            debug_assert_eq!(
                aw[i], bw[j],
                "element weights must agree across a shared universe"
            );
            acc += aw[i];
            left -= 1;
        }
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    acc
}

/// Threshold-aware merge: returns `Some(wt(a ∩ b))` iff it reaches
/// `required`, abandoning the merge (and returning `None`) as soon as
/// `acc + min(suffix_a[i], suffix_b[j]) < required`. Exposed for the
/// property tests that pit it against the linear oracle.
pub fn overlap_at_least(
    a: SetRef<'_>,
    b: SetRef<'_>,
    required: Weight,
    stats: &mut SsJoinStats,
) -> Option<Weight> {
    let (ar, aw) = (a.ranks(), a.weights());
    let (br, bw) = (b.ranks(), b.weights());
    let (mut i, mut j) = (0usize, 0usize);
    let mut acc = Weight::ZERO;
    while i < ar.len() && j < br.len() {
        if acc + a.suffix_weight(i).min(b.suffix_weight(j)) < required {
            stats.early_exits += 1;
            return None;
        }
        stats.merge_steps += 1;
        // Flag-arithmetic advance: same cursor moves (and thus the same
        // step and early-exit points) as a three-way compare, with one
        // equality branch instead of an unpredictable three-way jump.
        let (x, y) = (ar[i], br[j]);
        if x == y {
            debug_assert_eq!(
                aw[i], bw[j],
                "element weights must agree across a shared universe"
            );
            acc += aw[i];
        }
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    (acc >= required).then_some(acc)
}

/// Galloping variant for skewed-length pairs: walks the `short` set and
/// locates each rank in `long` by exponential probe plus binary search,
/// applying the same suffix-weight early-exit bound per short element.
/// Exposed for the property tests that pit it against the linear oracle.
pub fn overlap_gallop(
    short: SetRef<'_>,
    long: SetRef<'_>,
    required: Weight,
    stats: &mut SsJoinStats,
) -> Option<Weight> {
    let lr = long.ranks();
    let mut j = 0usize;
    let mut acc = Weight::ZERO;
    for (i, (&rank, &w)) in short.ranks().iter().zip(short.weights()).enumerate() {
        if j >= lr.len() {
            break;
        }
        if acc + short.suffix_weight(i).min(long.suffix_weight(j)) < required {
            stats.early_exits += 1;
            return None;
        }
        let pos = gallop_seek(lr, j, rank, &mut stats.gallop_probes);
        j = pos;
        if pos < lr.len() && lr[pos] == rank {
            debug_assert_eq!(
                w,
                long.weights()[pos],
                "element weights must agree across a shared universe"
            );
            acc += w;
            j += 1;
        }
    }
    (acc >= required).then_some(acc)
}

/// First index in `ranks[from..]` holding a value `>= target` (exponential
/// probe from `from`, then binary search over the bracketed window). Every
/// rank comparison increments `probes`.
fn gallop_seek(ranks: &[u32], from: usize, target: u32, probes: &mut u64) -> usize {
    let len = ranks.len();
    let mut lo = from;
    let mut hi = len;
    let mut bound = 1usize;
    loop {
        let idx = from + bound;
        if idx >= len {
            break;
        }
        *probes += 1;
        if ranks[idx] < target {
            lo = idx + 1;
            bound <<= 1;
        } else {
            hi = idx + 1;
            break;
        }
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        *probes += 1;
        if ranks[mid] < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::SetCollection;

    fn w(x: f64) -> Weight {
        Weight::from_f64(x)
    }

    fn pair(a: &[(u32, f64)], b: &[(u32, f64)]) -> SetCollection {
        SetCollection::from_sets(
            vec![
                (a.iter().map(|&(r, x)| (r, w(x))).collect(), 0.0),
                (b.iter().map(|&(r, x)| (r, w(x))).collect(), 0.0),
            ],
            1 << 16,
            0,
        )
        .unwrap()
    }

    /// All three kernels must agree on acceptance and overlap value.
    fn check_all(c: &SetCollection, required: Weight) {
        let (a, b) = (c.set(0), c.set(1));
        let exact = a.overlap(b);
        let oracle = (exact >= required).then_some(exact);
        for kernel in [
            OverlapKernel::Linear,
            OverlapKernel::EarlyExit,
            OverlapKernel::Adaptive,
        ] {
            let mut st = SsJoinStats::default();
            assert_eq!(
                verify_overlap(kernel, a, b, required, &mut st),
                oracle,
                "{kernel:?} disagrees with oracle at required={required}"
            );
            let mut st = SsJoinStats::default();
            assert_eq!(
                verify_overlap(kernel, b, a, required, &mut st),
                oracle,
                "{kernel:?} (swapped) disagrees with oracle at required={required}"
            );
        }
    }

    #[test]
    fn kernels_agree_basic() {
        let c = pair(
            &[(1, 1.0), (2, 2.0), (5, 0.5), (9, 1.0)],
            &[(2, 2.0), (3, 9.0), (5, 0.5)],
        );
        for req in [0.0, 1.0, 2.5, 2.6, 100.0] {
            check_all(&c, Weight::from_f64_threshold(req));
        }
    }

    #[test]
    fn kernels_agree_edge_shapes() {
        type Shape = [(u32, f64)];
        let shapes: &[(&Shape, &Shape)] = &[
            (&[], &[]),
            (&[], &[(1, 1.0)]),
            (&[(3, 2.0)], &[(3, 2.0)]),
            (&[(3, 2.0)], &[(4, 2.0)]),
            (&[(0, 1.0), (2, 1.0)], &[(1, 5.0), (3, 5.0)]),
        ];
        for &(a, b) in shapes {
            let c = pair(a, b);
            for req in [0.0, 0.5, 1.0, 2.0, 3.0] {
                check_all(&c, Weight::from_f64_threshold(req));
            }
        }
    }

    #[test]
    fn early_exit_fires_on_hopeless_pair() {
        // Long disjoint tails: requiring more than the (empty) overlap must
        // abandon the merge before walking both lists.
        let a: Vec<(u32, f64)> = (0..64).map(|i| (i * 2, 1.0)).collect();
        let b: Vec<(u32, f64)> = (0..64).map(|i| (i * 2 + 1, 1.0)).collect();
        let c = pair(&a, &b);
        let mut st = SsJoinStats::default();
        let out = verify_overlap(
            OverlapKernel::EarlyExit,
            c.set(0),
            c.set(1),
            w(10.0),
            &mut st,
        );
        assert_eq!(out, None);
        assert_eq!(st.early_exits, 1);
        let mut lin = SsJoinStats::default();
        let _ = verify_overlap(OverlapKernel::Linear, c.set(0), c.set(1), w(10.0), &mut lin);
        assert!(
            st.merge_steps < lin.merge_steps,
            "early exit did not save merge steps ({} vs {})",
            st.merge_steps,
            lin.merge_steps
        );
    }

    #[test]
    fn accepted_pairs_report_exact_overlap() {
        // Acceptance must merge to the end: the returned overlap is exact
        // even when the threshold was already met mid-merge.
        let c = pair(
            &[(0, 5.0), (1, 5.0), (2, 1.0)],
            &[(0, 5.0), (1, 5.0), (2, 1.0)],
        );
        let mut st = SsJoinStats::default();
        let out = verify_overlap(
            OverlapKernel::EarlyExit,
            c.set(0),
            c.set(1),
            w(6.0),
            &mut st,
        );
        assert_eq!(out, Some(w(11.0)));
    }

    #[test]
    fn adaptive_gallops_on_skew() {
        let short: Vec<(u32, f64)> = vec![(100, 1.0), (500, 1.0)];
        let long: Vec<(u32, f64)> = (0..1000).map(|i| (i, 1.0)).collect();
        let c = pair(&short, &long);
        let mut st = SsJoinStats::default();
        let out = verify_overlap(
            OverlapKernel::Adaptive,
            c.set(0),
            c.set(1),
            Weight::ZERO,
            &mut st,
        );
        assert_eq!(out, Some(w(2.0)));
        assert!(st.gallop_probes > 0, "skewed pair did not gallop");
        assert!(
            st.gallop_probes < 1000,
            "galloping should probe far fewer than a linear walk"
        );
    }

    #[test]
    fn gallop_seek_positions() {
        let ranks = [2u32, 4, 4, 7, 9, 12];
        let mut probes = 0u64;
        assert_eq!(gallop_seek(&ranks, 0, 0, &mut probes), 0);
        assert_eq!(gallop_seek(&ranks, 0, 2, &mut probes), 0);
        assert_eq!(gallop_seek(&ranks, 0, 5, &mut probes), 3);
        assert_eq!(gallop_seek(&ranks, 0, 12, &mut probes), 5);
        assert_eq!(gallop_seek(&ranks, 0, 13, &mut probes), 6);
        assert_eq!(gallop_seek(&ranks, 3, 9, &mut probes), 4);
        assert_eq!(gallop_seek(&ranks, 6, 1, &mut probes), 6);
        assert!(probes > 0);
    }

    #[test]
    fn required_zero_always_accepts() {
        let c = pair(&[(1, 1.0)], &[(2, 1.0)]);
        for kernel in [
            OverlapKernel::Linear,
            OverlapKernel::EarlyExit,
            OverlapKernel::Adaptive,
        ] {
            let mut st = SsJoinStats::default();
            assert_eq!(
                verify_overlap(kernel, c.set(0), c.set(1), Weight::ZERO, &mut st),
                Some(Weight::ZERO)
            );
        }
    }
}
