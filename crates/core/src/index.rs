//! Persistent corpus index: the build-once / probe-many split.
//!
//! Every [`crate::ssjoin`] call rebuilds the S-side inverted index from
//! scratch — the right trade for one-shot joins, and a waste for the
//! data-cleaning *services* the paper motivates (§6): fuzzy match and dedup
//! against a large, mostly-static reference table. [`CorpusIndex`] factors
//! that cost out. Built once from a [`SetCollection`], it owns everything
//! the executors previously derived per call on the S side — the prefix
//! inverted index, per-set prefix lengths, the full-set inverted index for
//! [`Algorithm::Basic`], and (inside the arena) the per-set bitmap
//! signatures — and answers `R × index` joins through [`CorpusIndex::probe`]
//! with the same budget, cancellation, and zero-warm-allocation contracts as
//! [`crate::ssjoin_with`].
//!
//! # Why probe output is identical to a fresh join
//!
//! The one quantity a persistent S index cannot know in advance is the
//! *probe batch's* norm range, which a fresh build uses to lower-bound the
//! required overlap when extracting S prefixes (Lemma 1). The index instead
//! fixes a conservative partner-norm interval at build time (by default
//! `[0, ∞)`). Interval lower-bounding is inclusion-monotone — a wider
//! partner interval can only lower the bound — so the stored prefixes are
//! supersets of the ones a fresh build would extract, the candidate set is a
//! superset of the fresh candidate set, and exact per-pair verification
//! makes the emitted pairs bit-identical. Only candidate-level *counters*
//! may differ from a fresh [`crate::ssjoin`] run.
//!
//! # Incremental updates
//!
//! [`CorpusIndex::insert`] appends a set to the arena without touching the
//! index: new sets live in a small *epoch* tail that probes scan
//! brute-force, and once the tail outgrows `max(64, indexed/8)` it is merged
//! into the index by a (parallel) rebuild. [`CorpusIndex::delete`] is an
//! O(1) tombstone; dead sets are filtered from probe output and excluded
//! from the next rebuild. [`CorpusIndex::compact`] rewrites the arena
//! without dead sets and renumbers ids densely. Every probe sees exactly the
//! live sets — the tests prove any insert/delete sequence is equivalent to a
//! fresh rebuild of the surviving collection.

use crate::budget::{estimate_memory_bytes, BudgetState};
use crate::error::{SsJoinError, SsJoinResult};
use crate::exec::{
    apply_plan, build_csr_parallel, effective_threads, estimate_probe_costs_into,
    prefix_lengths_into, probe_basic, probe_partition, probe_positional, probe_prefix_family,
    vec_bytes, Algorithm, CsrIndex, JoinWorkspace, PlanRequest, ShardPolicy, Side, SsJoinConfig,
    SsJoinRun, WorkerScratch,
};
use crate::predicate::OverlapPredicate;
use crate::set::{SetCollection, SignatureWidth};
use crate::stats::SsJoinStats;
use crate::weight::Weight;

/// Build-time options for a [`CorpusIndex`].
#[derive(Debug, Clone)]
pub struct CorpusIndexOptions {
    /// Norm interval the probe batches are promised to stay within. Tighter
    /// intervals yield shorter stored prefixes (fewer candidates per probe);
    /// the default `[0, ∞)` accepts any batch. Probing with a batch whose
    /// norm range escapes the promised interval is a config error — a
    /// silently wrong answer otherwise.
    pub partner_norms: Option<(f64, f64)>,
    /// Worker threads for index (re)builds. Builds are bit-identical at any
    /// thread count. Defaults to 1.
    pub build_threads: usize,
    /// Epoch-tail size that triggers an automatic merge on insert. Defaults
    /// to `max(64, indexed/8)`.
    pub epoch_limit: Option<usize>,
    /// Bitmap-signature width the index commits to at build time. Probes
    /// whose execution context requests a different
    /// [`crate::ExecContext::signature_width`] are rejected with
    /// [`SsJoinError::SignatureWidthMismatch`] — a persisted index must not
    /// silently serve a filter configuration it was not built (and
    /// benchmarked) for. Defaults to [`SignatureWidth::W1`].
    pub signature_width: SignatureWidth,
    /// Default resident-memory budget in bytes for probes. A probe whose
    /// working-set estimate exceeds the budget is served *out of core*
    /// through the token-range spill driver (bit-identical pairs, see
    /// [`crate::ExecBudget::max_resident_bytes`]) instead of resident
    /// through the persistent index — the knob that lets a long-lived
    /// service hold batches larger than RAM. A `max_resident_bytes` set on
    /// the probe's own config takes precedence per call. `None` (the
    /// default) never spills.
    pub memory_budget: Option<u64>,
    /// Approximate-mode spec the index commits to at build time. When set
    /// (and active), the seeded LSH sketch of [`crate::ApproxSpec`] is built
    /// once per (re)build, so warm approximate probes run the candidate
    /// loop only. Probes must then pass the *same* spec on their execution
    /// context — mirroring the signature-width pinning, a persisted sketch
    /// must not silently serve a recall target or seed it was not built
    /// for. Exact probes of an approx-enabled index remain available and
    /// unchanged. Defaults to `None` (exact-only index).
    pub approx: Option<crate::ApproxSpec>,
}

impl Default for CorpusIndexOptions {
    fn default() -> Self {
        Self {
            partner_norms: None,
            build_threads: 1,
            epoch_limit: None,
            signature_width: SignatureWidth::default(),
            memory_budget: None,
            approx: None,
        }
    }
}

/// A persistent, incrementally maintainable S-side index over one
/// [`SetCollection`] and one [`OverlapPredicate`].
///
/// See the module docs for the design; see
/// [`CorpusIndex::probe`] for the join entry point.
#[derive(Debug)]
pub struct CorpusIndex {
    corpus: SetCollection,
    pred: OverlapPredicate,
    partner_norms: (f64, f64),
    epoch_limit: Option<usize>,
    build_threads: usize,
    /// Signature width fixed at build time; probes must request the same.
    signature_width: SignatureWidth,
    /// Default resident budget for probes without their own.
    memory_budget: Option<u64>,
    /// Approximate spec fixed at build time (`None` = exact-only index).
    approx_spec: Option<crate::approx::ApproxSpec>,
    /// The LSH sketch backing approximate probes, rebuilt with the indexes.
    approx: Option<Box<crate::approx::ApproxSketch>>,
    /// Prefix inverted index over sets `0..indexed` (prefix-family probes).
    prefix_index: CsrIndex,
    /// Per-set prefix lengths backing `prefix_index` (0 for dead sets).
    prefix_lens: Vec<usize>,
    /// Cached `Σ prefix_lens`, reported into probe stats.
    prefix_tuples: u64,
    /// Per-rank prefix-frequency histogram over the live indexed sets,
    /// frozen at (re)build time — the statistic that lets probe-time
    /// planning estimate the prefix join size in O(probe batch) without
    /// rescanning the corpus. Saturating, like every planner histogram.
    prefix_freq: Vec<u32>,
    /// Full-set inverted index over sets `0..indexed` (basic probes).
    full_index: CsrIndex,
    full_lens: Vec<usize>,
    /// Sets `indexed..corpus.len()` are the un-indexed epoch tail.
    indexed: usize,
    alive: Vec<bool>,
    /// Total tombstoned sets (indexed or epoch).
    dead: usize,
    /// Tombstoned sets that still have postings in the current index — only
    /// these force the probe-output retain pass.
    dead_in_index: usize,
    /// Scratch for parallel rebuilds.
    workers: Vec<WorkerScratch>,
}

impl CorpusIndex {
    /// Build an index over `corpus` for probes under `pred`, with default
    /// options.
    pub fn build(corpus: SetCollection, pred: OverlapPredicate) -> SsJoinResult<Self> {
        Self::build_with(corpus, pred, &CorpusIndexOptions::default())
    }

    /// Build with explicit [`CorpusIndexOptions`].
    ///
    /// # Errors
    /// [`SsJoinError::Config`] when `options.partner_norms` is inverted or
    /// non-finite at the low end, or `build_threads` is 0.
    pub fn build_with(
        corpus: SetCollection,
        pred: OverlapPredicate,
        options: &CorpusIndexOptions,
    ) -> SsJoinResult<Self> {
        let partner_norms = options.partner_norms.unwrap_or((0.0, f64::MAX));
        if partner_norms.0.is_nan() || partner_norms.1.is_nan() || partner_norms.0 > partner_norms.1
        {
            return Err(SsJoinError::Config(format!(
                "partner norm interval [{}, {}] is inverted or NaN",
                partner_norms.0, partner_norms.1
            )));
        }
        if options.build_threads == 0 {
            return Err(SsJoinError::Config(
                "build_threads must be at least 1".into(),
            ));
        }
        if let Some(spec) = &options.approx {
            spec.validate()?;
        }
        let alive = vec![true; corpus.len()];
        let mut index = Self {
            corpus,
            pred,
            partner_norms,
            epoch_limit: options.epoch_limit,
            build_threads: options.build_threads,
            signature_width: options.signature_width,
            memory_budget: options.memory_budget,
            approx_spec: options.approx.filter(crate::approx::ApproxSpec::is_active),
            approx: None,
            prefix_index: CsrIndex::default(),
            prefix_lens: Vec::new(),
            prefix_tuples: 0,
            prefix_freq: Vec::new(),
            full_index: CsrIndex::default(),
            full_lens: Vec::new(),
            indexed: 0,
            alive,
            dead: 0,
            dead_in_index: 0,
            workers: Vec::new(),
        };
        index.rebuild();
        Ok(index)
    }

    /// Rebuild both inverted indexes over the whole arena, excluding dead
    /// sets, and absorb the epoch tail. Bit-identical at any
    /// `build_threads`.
    fn rebuild(&mut self) {
        let n = self.corpus.len();
        prefix_lengths_into(
            &self.corpus,
            Side::S,
            &self.pred,
            Some(self.partner_norms),
            &mut self.prefix_lens,
        );
        for (len, &alive) in self.prefix_lens.iter_mut().zip(&self.alive) {
            if !alive {
                *len = 0;
            }
        }
        self.prefix_tuples = self.prefix_lens.iter().map(|&l| l as u64).sum();
        self.prefix_freq.clear();
        self.prefix_freq.resize(self.corpus.universe_size(), 0);
        for (id, &len) in self.prefix_lens.iter().enumerate() {
            let set = self.corpus.set(id as u32);
            for &rank in &set.ranks()[..len] {
                let slot = &mut self.prefix_freq[rank as usize];
                *slot = slot.saturating_add(1);
            }
        }
        self.full_lens.clear();
        self.full_lens.extend((0..n).map(|i| {
            if self.alive[i] {
                self.corpus.set(i as u32).len()
            } else {
                0
            }
        }));
        let threads = effective_threads(self.build_threads);
        if self.workers.len() < threads {
            self.workers.resize_with(threads, WorkerScratch::default);
        }
        build_csr_parallel(
            &mut self.prefix_index,
            &self.corpus,
            &self.prefix_lens,
            &mut self.workers,
            threads,
        );
        build_csr_parallel(
            &mut self.full_index,
            &self.corpus,
            &self.full_lens,
            &mut self.workers,
            threads,
        );
        self.indexed = n;
        self.dead_in_index = 0;
        if let Some(spec) = self.approx_spec {
            // The sketch covers the whole arena, tombstones included (a
            // tombstoned set's pairs are filtered from probe output), so a
            // rebuild never has to renumber leaf membership.
            let mut sketch = self.approx.take().unwrap_or_default();
            let unlimited = crate::budget::ExecBudget::default();
            let budget = BudgetState::new(&unlimited, None);
            sketch.build(&self.corpus, &self.pred, &spec, &budget);
            self.approx = Some(sketch);
        }
    }

    /// Execute `batch SSJoin_pred index` into a caller-owned workspace.
    ///
    /// Semantics match [`crate::ssjoin_with`] with this index's corpus as
    /// the S side restricted to live sets: same output pairs, same budget
    /// and cancellation behaviour (honored per call through
    /// `config.exec.budget` / `config.exec.cancel`), same `(r, s)`-sorted
    /// zero-copy result. On a warmed workspace a sequential probe performs
    /// zero heap allocations. Candidate-level counters may exceed a fresh
    /// join's (see the module docs); emitted pairs never differ.
    ///
    /// # Errors
    /// [`SsJoinError::UniverseMismatch`] when `batch` comes from a different
    /// builder run; [`SsJoinError::Config`] for zero threads or a batch
    /// whose norms escape the promised partner interval;
    /// [`SsJoinError::BudgetExceeded`] when a limit trips.
    pub fn probe<'w>(
        &self,
        batch: &SetCollection,
        config: &SsJoinConfig,
        ws: &'w mut JoinWorkspace,
    ) -> SsJoinResult<SsJoinRun<'w>> {
        let (stats, used) = self.probe_into(batch, config, ws)?;
        Ok(SsJoinRun {
            pairs: &ws.out,
            stats,
            algorithm_used: used,
        })
    }

    fn probe_into(
        &self,
        batch: &SetCollection,
        config: &SsJoinConfig,
        ws: &mut JoinWorkspace,
    ) -> SsJoinResult<(SsJoinStats, Algorithm)> {
        if !batch.shares_universe(&self.corpus) {
            return Err(SsJoinError::UniverseMismatch);
        }
        let ctx = &config.exec;
        if ctx.threads == 0 {
            return Err(SsJoinError::Config("threads must be at least 1".into()));
        }
        if ctx.signature_width != self.signature_width {
            return Err(SsJoinError::SignatureWidthMismatch {
                built: self.signature_width,
                probe: ctx.signature_width,
            });
        }
        if let Some((lo, hi)) = batch.norm_range() {
            if lo < self.partner_norms.0 || hi > self.partner_norms.1 {
                return Err(SsJoinError::Config(format!(
                    "batch norms [{lo}, {hi}] escape the partner interval [{}, {}] \
                     this index was built for",
                    self.partner_norms.0, self.partner_norms.1
                )));
            }
        }
        // Approximate probes must match the sketch this index was built
        // with — same pinning discipline as the signature width: a persisted
        // sketch serves exactly the recall target and seed it was built for.
        let approx = match &ctx.approx {
            Some(spec) => {
                spec.validate()?;
                match (ctx.active_approx(), self.approx.as_deref()) {
                    (None, _) => None,
                    (Some(_), None) => {
                        return Err(SsJoinError::Config(
                            "approximate probe against an index built without an approximate \
                             spec; set CorpusIndexOptions::approx at build time"
                                .into(),
                        ));
                    }
                    (Some(spec), Some(sketch)) => {
                        if sketch.seed != spec.seed || sketch.recall_milli != spec.recall_milli() {
                            return Err(SsJoinError::Config(format!(
                                "approximate spec (recall {:.3}, seed {:#x}) does not match the \
                                 sketch this index was built with (recall {:.3}, seed {:#x})",
                                spec.target_recall,
                                spec.seed,
                                f64::from(sketch.recall_milli) / 1000.0,
                                sketch.seed
                            )));
                        }
                        Some((sketch, spec))
                    }
                }
            }
            None => None,
        };
        let effective = effective_threads(ctx.threads);
        let clamped;
        let ctx = if effective == ctx.threads {
            ctx
        } else {
            clamped = ctx.clone().with_threads(effective);
            &clamped
        };
        let budget = BudgetState::new(&ctx.budget, ctx.cancel.as_ref());
        // Out-of-core routing: when the probe's working-set estimate exceeds
        // the resident budget (per-probe `max_resident_bytes`, else the
        // index-level default), the probe is served through the token-range
        // spill driver as a budgeted full join against the corpus arena —
        // the persistent index cannot be consulted one partition at a time,
        // but the spilled join holds only one partition's sub-index resident
        // and emits bit-identical pairs. The hard memory cap is then priced
        // against the per-partition peak inside the driver, not the full
        // estimate.
        let spill_limit = ctx.budget.max_resident_bytes.or(self.memory_budget);
        let spilling =
            spill_limit.is_some_and(|limit| estimate_memory_bytes(batch, &self.corpus) > limit);
        if approx.is_some() && spilling {
            return Err(SsJoinError::Config(
                "approximate mode cannot run out of core: raise the resident budget or drop \
                 the approximate spec"
                    .into(),
            ));
        }
        if !spilling {
            if let Some(limit) = ctx.budget.max_memory_bytes {
                if estimate_memory_bytes(batch, &self.corpus) > limit {
                    budget.trip_memory();
                }
            }
        }
        let _ = budget.proceed();
        ws.begin_run();
        let (r, s) = (batch, &self.corpus);
        let spilled = if spilling && budget.cause().is_none() {
            let sctx;
            let sctx = if ctx.budget.max_resident_bytes.is_some() {
                ctx
            } else {
                let mut c = ctx.clone();
                c.budget.max_resident_bytes = spill_limit;
                sctx = c;
                &sctx
            };
            crate::spill::run(r, s, &self.pred, config.algorithm, sctx, &budget, ws)?
        } else {
            None
        };
        let from_spill = spilled.is_some();
        let from_approx = !from_spill && approx.is_some();
        let (mut stats, used) = if let Some(result) = spilled {
            result
        } else if let Some((sketch, spec)) = approx {
            crate::approx::probe_built(
                r,
                s,
                sketch,
                &self.pred,
                config.algorithm,
                ctx,
                &spec,
                &budget,
                ws,
            )
        } else {
            match config.algorithm {
                Algorithm::Basic => (
                    probe_basic(r, s, &self.full_index, &self.pred, ctx, &budget, ws),
                    Algorithm::Basic,
                ),
                Algorithm::PrefixFiltered => (
                    probe_prefix_family(
                        r,
                        s,
                        &self.prefix_index,
                        self.prefix_tuples,
                        &self.pred,
                        ctx,
                        false,
                        &budget,
                        ws,
                    ),
                    Algorithm::PrefixFiltered,
                ),
                Algorithm::Inline => (self.probe_inline(r, ctx, &budget, ws), Algorithm::Inline),
                Algorithm::PositionalInline => (
                    probe_positional(
                        r,
                        s,
                        &self.prefix_index,
                        self.prefix_tuples,
                        &self.pred,
                        ctx,
                        &budget,
                        ws,
                    ),
                    Algorithm::PositionalInline,
                ),
                Algorithm::Partition => (
                    probe_partition(
                        r,
                        s,
                        &self.prefix_index,
                        &self.prefix_lens,
                        self.prefix_tuples,
                        &self.pred,
                        ctx,
                        &budget,
                        ws,
                    ),
                    Algorithm::Partition,
                ),
                Algorithm::Auto => {
                    // Probe-time planning from statistics frozen at (re)build
                    // time — the corpus token- and prefix-frequency histograms —
                    // so the estimate costs O(probe batch), never a corpus scan.
                    // The signature width is pinned to the one this index was
                    // built with.
                    let est = estimate_probe_costs_into(
                        r,
                        s,
                        &self.prefix_freq,
                        self.prefix_tuples,
                        &self.pred,
                        ws,
                    );
                    let choice = est.plan(&PlanRequest {
                        threads: ctx.threads,
                        token_shards: matches!(ctx.shard, ShardPolicy::TokenShards { .. }),
                        width: Some(self.signature_width),
                    });
                    let pctx = apply_plan(ctx, &choice);
                    let mut stats = match choice.algorithm {
                        Algorithm::Basic => {
                            probe_basic(r, s, &self.full_index, &self.pred, &pctx, &budget, ws)
                        }
                        Algorithm::PrefixFiltered => probe_prefix_family(
                            r,
                            s,
                            &self.prefix_index,
                            self.prefix_tuples,
                            &self.pred,
                            &pctx,
                            false,
                            &budget,
                            ws,
                        ),
                        Algorithm::PositionalInline => probe_positional(
                            r,
                            s,
                            &self.prefix_index,
                            self.prefix_tuples,
                            &self.pred,
                            &pctx,
                            &budget,
                            ws,
                        ),
                        Algorithm::Partition => probe_partition(
                            r,
                            s,
                            &self.prefix_index,
                            &self.prefix_lens,
                            self.prefix_tuples,
                            &self.pred,
                            &pctx,
                            &budget,
                            ws,
                        ),
                        _ => self.probe_inline(r, &pctx, &budget, ws),
                    };
                    stats.plan = Some(choice);
                    (stats, choice.algorithm)
                }
            }
        };
        if from_spill {
            // The spilled join covered the whole arena — epoch tail
            // included — so only the tombstone filter applies, and it must
            // cover epoch-tail tombstones too.
            if self.dead > 0 {
                ws.out.retain(|p| self.alive[p.s as usize]);
            }
        } else {
            // Tombstones: sets deleted since the last rebuild still have
            // postings, so their pairs are filtered here. Epoch tail: sets
            // inserted since the last rebuild have no postings, so they are
            // joined brute-force below. Both passes are skipped entirely (no
            // work, no allocations) when the index is clean. The approximate
            // sketch keeps *every* arena set in its leaves across rebuilds
            // (tombstones are not zeroed out the way CSR posting lengths
            // are), so approximate probes must filter every tombstone, not
            // only the post-rebuild ones.
            let dead_emitted = if from_approx {
                self.dead
            } else {
                self.dead_in_index
            };
            if dead_emitted > 0 {
                ws.out.retain(|p| self.alive[p.s as usize]);
            }
            let epoch_added = self.probe_epoch_tail(r, &budget, ws, &mut stats);
            if epoch_added {
                ws.out.sort_unstable_by_key(|p| (p.r, p.s));
            }
        }
        stats.budget_checks = budget.checks();
        stats.effective_threads = effective as u64;
        stats.workspace_reuses = ws.reuses();
        stats.bytes_reserved = ws.bytes_reserved() + self.bytes_reserved();
        if let Some(which) = budget.cause() {
            return Err(SsJoinError::BudgetExceeded {
                which,
                partial_stats: Box::new(stats),
            });
        }
        debug_assert!(
            ws.out
                .windows(2)
                .all(|w| (w[0].r, w[0].s) < (w[1].r, w[1].s)),
            "probe output must arrive (r, s)-sorted and duplicate-free"
        );
        stats.output_pairs = ws.out.len() as u64;
        Ok((stats, used))
    }

    /// Inline-family dispatch, mirroring the one-shot executor's routing to
    /// the token-sharded partition executor when parallel.
    fn probe_inline(
        &self,
        r: &SetCollection,
        ctx: &crate::exec::ExecContext,
        budget: &BudgetState,
        ws: &mut JoinWorkspace,
    ) -> SsJoinStats {
        if ctx.use_token_shards() {
            return probe_partition(
                r,
                &self.corpus,
                &self.prefix_index,
                &self.prefix_lens,
                self.prefix_tuples,
                &self.pred,
                ctx,
                budget,
                ws,
            );
        }
        probe_prefix_family(
            r,
            &self.corpus,
            &self.prefix_index,
            self.prefix_tuples,
            &self.pred,
            ctx,
            true,
            budget,
            ws,
        )
    }

    /// Brute-force join of the batch against the un-indexed epoch tail.
    /// Returns true when any pair was appended (the caller must re-sort).
    fn probe_epoch_tail(
        &self,
        r: &SetCollection,
        budget: &BudgetState,
        ws: &mut JoinWorkspace,
        stats: &mut SsJoinStats,
    ) -> bool {
        if self.indexed == self.corpus.len() {
            return false;
        }
        let before = ws.out.len();
        for rid in 0..r.len() as u32 {
            let out_before = ws.out.len();
            let rset = r.set(rid);
            let mut cand = 0u64;
            for sid in self.indexed as u32..self.corpus.len() as u32 {
                if !self.alive[sid as usize] {
                    continue;
                }
                cand += 1;
                let sset = self.corpus.set(sid);
                let overlap = rset.overlap(sset);
                if overlap > Weight::ZERO && self.pred.check(overlap, rset.norm(), sset.norm()) {
                    ws.out.push(crate::exec::JoinPair {
                        r: rid,
                        s: sid,
                        overlap,
                    });
                }
            }
            stats.candidate_pairs += cand;
            stats.verified_pairs += cand;
            if !budget.checkpoint(cand, (ws.out.len() - out_before) as u64) {
                break;
            }
        }
        ws.out.len() > before
    }

    /// Append a set (element `(rank, weight)` pairs in any order, plus the
    /// norm used by normalized predicates) and return its id. The set is
    /// probe-visible immediately; it joins the inverted index at the next
    /// epoch merge, which happens automatically once the epoch tail exceeds
    /// the configured limit.
    ///
    /// # Errors
    /// [`SsJoinError::InvalidInput`] on duplicate or out-of-range ranks;
    /// arena-overflow errors as in the builder.
    pub fn insert(&mut self, elements: &[(u32, Weight)], norm: f64) -> SsJoinResult<u32> {
        let id = self.corpus.push_set(elements, norm)?;
        self.alive.push(true);
        if self.pending() > self.epoch_limit() {
            self.rebuild();
        }
        Ok(id)
    }

    /// Tombstone a set: O(1), idempotent, immediately probe-invisible. The
    /// arena slot is reclaimed by the next [`Self::compact`].
    ///
    /// # Errors
    /// [`SsJoinError::InvalidInput`] when `id` is out of range.
    pub fn delete(&mut self, id: u32) -> SsJoinResult<()> {
        let idx = id as usize;
        if idx >= self.corpus.len() {
            return Err(SsJoinError::InvalidInput(format!(
                "group id {id} is outside the corpus of {} sets",
                self.corpus.len()
            )));
        }
        if self.alive[idx] {
            self.alive[idx] = false;
            self.dead += 1;
            if idx < self.indexed {
                self.dead_in_index += 1;
            }
        }
        Ok(())
    }

    /// Merge the epoch tail into the inverted indexes now (a rebuild over
    /// the whole arena, excluding tombstoned sets). Probe results are
    /// unchanged; probes merely stop paying the brute-force tail scan.
    pub fn merge_epoch(&mut self) {
        self.rebuild();
    }

    /// Rewrite the arena without tombstoned sets, renumbering survivors
    /// densely in id order, and rebuild. Returns the old id of each
    /// surviving set (`result[new_id] = old_id`) so callers can remap
    /// whatever they key by id.
    ///
    /// # Errors
    /// Arena-overflow errors (practically unreachable: the compacted arena
    /// is no larger than the current one).
    pub fn compact(&mut self) -> SsJoinResult<Vec<u32>> {
        let mut survivors = Vec::with_capacity(self.live_len());
        let mut fresh = self.corpus.empty_like();
        let mut elems: Vec<(u32, Weight)> = Vec::new();
        for id in 0..self.corpus.len() as u32 {
            if !self.alive[id as usize] {
                continue;
            }
            let set = self.corpus.set(id);
            elems.clear();
            elems.extend(
                set.ranks()
                    .iter()
                    .copied()
                    .zip(set.weights().iter().copied()),
            );
            fresh.push_set(&elems, set.norm())?;
            survivors.push(id);
        }
        self.corpus = fresh;
        self.alive.clear();
        self.alive.resize(self.corpus.len(), true);
        self.dead = 0;
        self.rebuild();
        Ok(survivors)
    }

    /// The indexed corpus (including tombstoned and epoch-tail sets — ids
    /// are stable until [`Self::compact`]).
    pub fn corpus(&self) -> &SetCollection {
        &self.corpus
    }

    /// The predicate probes run under.
    pub fn predicate(&self) -> &OverlapPredicate {
        &self.pred
    }

    /// The bitmap-signature width this index was built with. Probes must
    /// request the same width on their execution context.
    pub fn signature_width(&self) -> SignatureWidth {
        self.signature_width
    }

    /// The default resident-memory budget applied to probes that do not set
    /// [`crate::ExecBudget::max_resident_bytes`] themselves.
    pub fn memory_budget(&self) -> Option<u64> {
        self.memory_budget
    }

    /// Set or clear the default resident-memory budget for future probes
    /// (see [`CorpusIndexOptions::memory_budget`]). Takes effect on the next
    /// probe; never changes emitted pairs, only the execution strategy.
    pub fn set_memory_budget(&mut self, bytes: Option<u64>) {
        self.memory_budget = bytes;
    }

    /// Total arena slots (live + tombstoned).
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// True when no sets are stored at all.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Live (non-tombstoned) sets.
    pub fn live_len(&self) -> usize {
        self.corpus.len() - self.dead
    }

    /// Sets in the un-indexed epoch tail (served brute-force until the next
    /// merge).
    pub fn pending(&self) -> usize {
        self.corpus.len() - self.indexed
    }

    /// True when `id` is in range and not tombstoned.
    pub fn is_alive(&self, id: u32) -> bool {
        self.alive.get(id as usize).copied().unwrap_or(false)
    }

    /// Bytes reserved by the persistent index structures (not counting the
    /// corpus arena itself).
    pub fn bytes_reserved(&self) -> u64 {
        self.prefix_index.bytes_reserved()
            + self.full_index.bytes_reserved()
            + vec_bytes(&self.prefix_lens)
            + vec_bytes(&self.prefix_freq)
            + vec_bytes(&self.full_lens)
            + vec_bytes(&self.alive)
            + self.approx.as_ref().map_or(0, |a| a.bytes_reserved())
    }

    fn epoch_limit(&self) -> usize {
        self.epoch_limit.unwrap_or(self.indexed / 8).max(64)
    }
}
