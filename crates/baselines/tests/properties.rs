//! Property tests: the Gravano baseline against brute force on random
//! string sets (long enough for the positional q-gram bound to apply),
//! driven by a seeded PRNG so every failure is reproducible from the
//! iteration's seed.

use ssjoin_baselines::gravano::brute_force_edit_join;
use ssjoin_baselines::{naive_join, GravanoConfig, GravanoJoin};
use ssjoin_prng::{Rng, StdRng};
use ssjoin_sim::edit_similarity;

/// Strings of 8–20 chars over {a, b, space}: long enough that the filters
/// of the customized algorithm are sound at θ ≥ 0.8.
fn random_corpus(rng: &mut StdRng) -> Vec<String> {
    const POOL: &[char] = &['a', 'b', ' '];
    let n = rng.gen_range(1usize..14);
    (0..n)
        .map(|_| {
            let len = rng.gen_range_inclusive(8usize..=20);
            (0..len).map(|_| POOL[rng.gen_index(POOL.len())]).collect()
        })
        .collect()
}

#[test]
fn gravano_matches_brute_force() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0x6AA0 + seed);
        let data = random_corpus(&mut rng);
        let theta = 0.8 + 0.18 * rng.gen_f64();
        let join = GravanoJoin::new(GravanoConfig::new(3, theta));
        let (pairs, stats) = join.run(&data, &data);
        let mut keys: Vec<(u32, u32)> = pairs.iter().map(|p| (p.r, p.s)).collect();
        keys.sort_unstable();
        let mut expect = brute_force_edit_join(&data, &data, theta);
        expect.sort_unstable();
        assert_eq!(keys, expect, "seed {seed} theta {theta}");
        assert!(
            stats.edit_comparisons <= (data.len() * data.len()) as u64,
            "seed {seed}"
        );
    }
}

#[test]
fn count_filter_never_changes_results() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0xC0F1 + seed);
        let data = random_corpus(&mut rng);
        let theta = 0.8 + 0.15 * rng.gen_f64();
        let plain = GravanoJoin::new(GravanoConfig::new(3, theta));
        let counted = GravanoJoin::new(GravanoConfig::new(3, theta).with_count_filter());
        let (p1, s1) = plain.run(&data, &data);
        let (p2, s2) = counted.run(&data, &data);
        let k = |ps: &[ssjoin_baselines::gravano::GravanoPair]| {
            let mut v: Vec<(u32, u32)> = ps.iter().map(|p| (p.r, p.s)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(k(&p1), k(&p2), "seed {seed} theta {theta}");
        assert!(s2.edit_comparisons <= s1.edit_comparisons, "seed {seed}");
    }
}

#[test]
fn naive_join_is_ground_truth() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0x6704 + seed);
        let n = rng.gen_range(0usize..10);
        let data: Vec<String> = (0..n)
            .map(|_| {
                let len = rng.gen_range_inclusive(0usize..=8);
                (0..len)
                    .map(|_| (b'a' + rng.gen_range(0u8..2)) as char)
                    .collect()
            })
            .collect();
        let theta = 0.3 + 0.7 * rng.gen_f64();
        let (pairs, stats) = naive_join(&data, &data, theta, |a, b| edit_similarity(a, b));
        assert_eq!(
            stats.comparisons,
            (data.len() * data.len()) as u64,
            "seed {seed}"
        );
        for &(i, j, sim) in &pairs {
            assert!(sim >= theta - 1e-9, "seed {seed}");
            assert!(
                (sim - edit_similarity(&data[i as usize], &data[j as usize])).abs() < 1e-12,
                "seed {seed}"
            );
        }
    }
}
