//! Property tests: the Gravano baseline against brute force on random
//! string sets (long enough for the positional q-gram bound to apply).

use proptest::prelude::*;
use ssjoin_baselines::gravano::brute_force_edit_join;
use ssjoin_baselines::{naive_join, GravanoConfig, GravanoJoin};
use ssjoin_sim::edit_similarity;

/// Strings of 8–20 chars over a small alphabet: long enough that the
/// filters of the customized algorithm are sound at θ ≥ 0.8.
fn corpus_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[ab ]{8,20}", 1..14)
}

proptest! {
    #[test]
    fn gravano_matches_brute_force(data in corpus_strategy(), theta in 0.8f64..0.98) {
        let join = GravanoJoin::new(GravanoConfig::new(3, theta));
        let (pairs, stats) = join.run(&data, &data);
        let mut keys: Vec<(u32, u32)> = pairs.iter().map(|p| (p.r, p.s)).collect();
        keys.sort_unstable();
        let mut expect = brute_force_edit_join(&data, &data, theta);
        expect.sort_unstable();
        prop_assert_eq!(keys, expect);
        prop_assert!(stats.edit_comparisons <= (data.len() * data.len()) as u64);
    }

    #[test]
    fn count_filter_never_changes_results(data in corpus_strategy(), theta in 0.8f64..0.95) {
        let plain = GravanoJoin::new(GravanoConfig::new(3, theta));
        let counted = GravanoJoin::new(GravanoConfig::new(3, theta).with_count_filter());
        let (p1, s1) = plain.run(&data, &data);
        let (p2, s2) = counted.run(&data, &data);
        let k = |ps: &[ssjoin_baselines::gravano::GravanoPair]| {
            let mut v: Vec<(u32, u32)> = ps.iter().map(|p| (p.r, p.s)).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(k(&p1), k(&p2));
        prop_assert!(s2.edit_comparisons <= s1.edit_comparisons);
    }

    #[test]
    fn naive_join_is_ground_truth(data in proptest::collection::vec("[ab]{0,8}", 0..10),
                                  theta in 0.3f64..1.0) {
        let (pairs, stats) = naive_join(&data, &data, theta, |a, b| edit_similarity(a, b));
        prop_assert_eq!(stats.comparisons, (data.len() * data.len()) as u64);
        for &(i, j, sim) in &pairs {
            prop_assert!(sim >= theta - 1e-9);
            prop_assert!((sim - edit_similarity(&data[i as usize], &data[j as usize])).abs() < 1e-12);
        }
    }
}
