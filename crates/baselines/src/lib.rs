//! Baseline similarity-join algorithms the paper compares against.
//!
//! * [`gravano`] — the customized edit-similarity join of Gravano et al.
//!   (VLDB 2001), "the best known customized similarity join algorithm for
//!   edit similarity" per §5.1 of the SSJoin paper: a positional q-gram
//!   equi-join with length and position filters, followed by edit-distance
//!   verification (Figure 11's left-hand operator tree).
//! * [`naive`] — the UDF-over-cross-product strategy §1 warns about:
//!   evaluate the similarity function on every pair.
//!
//! Both record the counters and phase timings needed to regenerate Figure 11
//! and Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gravano;
pub mod naive;

pub use gravano::{GravanoConfig, GravanoJoin, GravanoStats};
pub use naive::{naive_join, NaiveStats};
