//! Naive UDF-over-cross-product join.
//!
//! §1 of the paper: "database systems usually are forced to apply UDF-based
//! join predicates only after performing a cross product", which is why
//! specialized techniques exist at all. This baseline is that cross product:
//! evaluate the similarity UDF on every pair. It exists to quantify the
//! orders-of-magnitude gap the paper reports.

use std::time::{Duration, Instant};

/// Statistics for the naive join.
#[derive(Debug, Clone, Default)]
pub struct NaiveStats {
    /// Similarity-function invocations (= |R| · |S|).
    pub comparisons: u64,
    /// Result pairs.
    pub output_pairs: u64,
    /// Wall time.
    pub elapsed: Duration,
}

/// Join `r` and `s` by evaluating `similarity` on every pair and keeping
/// pairs scoring at least `threshold`.
pub fn naive_join<T, F>(
    r: &[T],
    s: &[T],
    threshold: f64,
    similarity: F,
) -> (Vec<(u32, u32, f64)>, NaiveStats)
where
    F: Fn(&T, &T) -> f64,
{
    let start = Instant::now();
    let mut out = Vec::new();
    let mut stats = NaiveStats::default();
    for (i, a) in r.iter().enumerate() {
        for (j, b) in s.iter().enumerate() {
            stats.comparisons += 1;
            let sim = similarity(a, b);
            if sim >= threshold - 1e-12 {
                out.push((i as u32, j as u32, sim));
            }
        }
    }
    stats.output_pairs = out.len() as u64;
    stats.elapsed = start.elapsed();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssjoin_sim::edit_similarity;

    #[test]
    fn evaluates_every_pair() {
        let data: Vec<String> = ["aa", "ab", "zz"].iter().map(|s| s.to_string()).collect();
        let (pairs, stats) = naive_join(&data, &data, 0.5, |a, b| edit_similarity(a, b));
        assert_eq!(stats.comparisons, 9);
        let keys: Vec<(u32, u32)> = pairs.iter().map(|&(i, j, _)| (i, j)).collect();
        assert!(keys.contains(&(0, 1)));
        assert!(!keys.contains(&(0, 2)));
        assert_eq!(stats.output_pairs as usize, pairs.len());
    }

    #[test]
    fn empty_inputs() {
        let none: Vec<String> = vec![];
        let (pairs, stats) = naive_join(&none, &none, 0.5, |a, b| edit_similarity(a, b));
        assert!(pairs.is_empty());
        assert_eq!(stats.comparisons, 0);
    }

    #[test]
    fn threshold_inclusive() {
        let data: Vec<String> = ["ab", "ac"].iter().map(|s| s.to_string()).collect();
        // edit_similarity("ab","ac") = 0.5 exactly; must be included at 0.5.
        let (pairs, _) = naive_join(&data, &data, 0.5, |a, b| edit_similarity(a, b));
        assert_eq!(pairs.len(), 4);
    }
}
