//! Customized q-gram edit-similarity join (Gravano et al., VLDB 2001).
//!
//! §5.1 of the SSJoin paper summarizes this algorithm (its Figure 11, left):
//! an equi-join on q-grams "along with additional filters (difference in
//! lengths of strings has to be less, and the positions of at least one
//! q-gram which is common to both strings has to be close) followed by an
//! invocation of the edit similarity computation".
//!
//! Concretely, a pair of strings becomes a candidate when
//!
//! 1. **length filter** — `| |σ1| − |σ2| | ≤ ε`, and
//! 2. **position filter** — they share at least one q-gram whose positions
//!    differ by at most ε,
//!
//! where `ε = ⌊(1 − α)·max(|σ1|, |σ2|)⌋` is the edit budget implied by the
//! similarity threshold α. Candidates are verified with the banded edit
//! distance. The optional **count filter** (`GravanoConfig::count_filter`)
//! additionally requires `max(|σ1|,|σ2|) − q + 1 − ε·q` positionally-close
//! shared q-grams (Property 4) before verification — Gravano et al.'s full
//! filter stack; the SSJoin paper's measured comparison counts (Table 1)
//! correspond to the filter set it describes, without the count filter.

use ssjoin_sim::{edit_similarity, levenshtein_within};
use ssjoin_text::{QGramTokenizer, Tokenizer};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration for the customized edit join.
#[derive(Debug, Clone)]
pub struct GravanoConfig {
    /// q-gram length (the paper's experiments use 3).
    pub q: usize,
    /// Edit-similarity threshold α in (0, 1].
    pub threshold: f64,
    /// Apply the count filter (Property 4) before verification.
    pub count_filter: bool,
}

impl GravanoConfig {
    /// Default configuration for a similarity threshold.
    pub fn new(q: usize, threshold: f64) -> Self {
        assert!(q >= 1, "q must be at least 1");
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1], got {threshold}"
        );
        Self {
            q,
            threshold,
            count_filter: false,
        }
    }

    /// Enable the count filter.
    pub fn with_count_filter(mut self) -> Self {
        self.count_filter = true;
        self
    }
}

/// Counters and phase timings matching Figure 11's breakdown.
#[derive(Debug, Clone, Default)]
pub struct GravanoStats {
    /// Time to build positional q-gram lists ("Prep").
    pub prep: Duration,
    /// Time to enumerate candidate pairs ("Candidate-enumeration").
    pub candidate_enumeration: Duration,
    /// Time verifying candidates with edit distance ("EditSim-Filter").
    pub editsim_filter: Duration,
    /// q-gram equi-join tuples inspected.
    pub join_tuples: u64,
    /// Distinct candidate pairs surviving the filters.
    pub candidate_pairs: u64,
    /// Edit-distance computations performed (Table 1's quantity).
    pub edit_comparisons: u64,
    /// Result pairs.
    pub output_pairs: u64,
}

impl GravanoStats {
    /// Total wall time.
    pub fn total(&self) -> Duration {
        self.prep + self.candidate_enumeration + self.editsim_filter
    }
}

/// One matching pair with its edit similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct GravanoPair {
    /// Index into the R strings.
    pub r: u32,
    /// Index into the S strings.
    pub s: u32,
    /// Edit similarity of the pair.
    pub similarity: f64,
}

/// The customized edit-similarity join.
#[derive(Debug, Clone)]
pub struct GravanoJoin {
    config: GravanoConfig,
}

struct PositionalGrams {
    /// Per string: `(gram, position)` pairs.
    grams: Vec<Vec<(String, u32)>>,
    lens: Vec<usize>,
}

impl GravanoJoin {
    /// New join with the given configuration.
    pub fn new(config: GravanoConfig) -> Self {
        Self { config }
    }

    fn prepare(&self, strings: &[String]) -> PositionalGrams {
        let tok = QGramTokenizer::new(self.config.q);
        let grams = strings
            .iter()
            .map(|s| {
                tok.tokenize(s)
                    .into_iter()
                    .enumerate()
                    .map(|(i, g)| (g, i as u32))
                    .collect()
            })
            .collect();
        let lens = strings.iter().map(|s| s.chars().count()).collect();
        PositionalGrams { grams, lens }
    }

    /// Join `r` with `s`, returning pairs with edit similarity ≥ the
    /// configured threshold. Pass the same slice twice for a self-join (all
    /// ordered pairs, including the diagonal, are reported — matching the
    /// SSJoin operator's semantics so outputs are directly comparable).
    pub fn run(&self, r: &[String], s: &[String]) -> (Vec<GravanoPair>, GravanoStats) {
        let mut stats = GravanoStats::default();
        let alpha = self.config.threshold;
        let q = self.config.q;

        let t0 = Instant::now();
        let pr = self.prepare(r);
        let ps = self.prepare(s);
        // Inverted index over S grams: gram → (string id, position).
        let mut index: HashMap<&str, Vec<(u32, u32)>> = HashMap::new();
        for (sid, grams) in ps.grams.iter().enumerate() {
            for (gram, pos) in grams {
                index
                    .entry(gram.as_str())
                    .or_default()
                    .push((sid as u32, *pos));
            }
        }
        stats.prep = t0.elapsed();

        // Candidate enumeration: equi-join on grams + length and position
        // filters; count filter optionally.
        let t1 = Instant::now();
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        // Matching q-gram count per S id for the current R string.
        let mut match_count: Vec<u32> = vec![0; s.len()];
        let mut touched: Vec<u32> = Vec::new();
        for (rid, grams) in pr.grams.iter().enumerate() {
            let rlen = pr.lens[rid];
            for (gram, rpos) in grams {
                let Some(postings) = index.get(gram.as_str()) else {
                    continue;
                };
                for &(sid, spos) in postings {
                    stats.join_tuples += 1;
                    let slen = ps.lens[sid as usize];
                    let max_len = rlen.max(slen);
                    let eps = ((1.0 - alpha) * max_len as f64).floor() as usize;
                    // Length filter.
                    if rlen.abs_diff(slen) > eps {
                        continue;
                    }
                    // Position filter.
                    if (*rpos as usize).abs_diff(spos as usize) > eps {
                        continue;
                    }
                    if match_count[sid as usize] == 0 {
                        touched.push(sid);
                    }
                    match_count[sid as usize] += 1;
                }
            }
            for &sid in &touched {
                let count = match_count[sid as usize];
                match_count[sid as usize] = 0;
                if self.config.count_filter {
                    let slen = ps.lens[sid as usize];
                    let max_len = rlen.max(slen);
                    let eps = ((1.0 - alpha) * max_len as f64).floor() as i64;
                    let bound = max_len as i64 - q as i64 + 1 - eps * q as i64;
                    if (count as i64) < bound {
                        continue;
                    }
                }
                candidates.push((rid as u32, sid));
            }
            touched.clear();
        }
        stats.candidate_pairs = candidates.len() as u64;
        stats.candidate_enumeration = t1.elapsed();

        // Verification with the banded edit distance.
        let t2 = Instant::now();
        let mut out = Vec::new();
        for (rid, sid) in candidates {
            let a = &r[rid as usize];
            let b = &s[sid as usize];
            let max_len = pr.lens[rid as usize].max(ps.lens[sid as usize]);
            stats.edit_comparisons += 1;
            if max_len == 0 {
                out.push(GravanoPair {
                    r: rid,
                    s: sid,
                    similarity: 1.0,
                });
                continue;
            }
            let budget = ((1.0 - alpha) * max_len as f64).floor() as usize;
            if let Some(d) = levenshtein_within(a, b, budget) {
                out.push(GravanoPair {
                    r: rid,
                    s: sid,
                    similarity: 1.0 - d as f64 / max_len as f64,
                });
            }
        }
        stats.output_pairs = out.len() as u64;
        stats.editsim_filter = t2.elapsed();
        (out, stats)
    }
}

/// Reference: brute-force edit-similarity join (used to validate the
/// filtered algorithm in tests).
pub fn brute_force_edit_join(r: &[String], s: &[String], alpha: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, a) in r.iter().enumerate() {
        for (j, b) in s.iter().enumerate() {
            if edit_similarity(a, b) >= alpha - 1e-12 {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn sample() -> Vec<String> {
        strings(&[
            "microsoft corporation",
            "microsoft corp",
            "mcrosoft corp",
            "oracle incorporated",
            "oracle inc",
            "international business machines",
        ])
    }

    fn keys(pairs: &[GravanoPair]) -> Vec<(u32, u32)> {
        let mut k: Vec<(u32, u32)> = pairs.iter().map(|p| (p.r, p.s)).collect();
        k.sort_unstable();
        k
    }

    #[test]
    fn matches_brute_force_various_thresholds() {
        let data = sample();
        for alpha in [0.7, 0.8, 0.85, 0.9, 0.95] {
            let join = GravanoJoin::new(GravanoConfig::new(3, alpha));
            let (pairs, _) = join.run(&data, &data);
            let mut expect = brute_force_edit_join(&data, &data, alpha);
            expect.sort_unstable();
            assert_eq!(keys(&pairs), expect, "alpha={alpha}");
        }
    }

    #[test]
    fn count_filter_preserves_results() {
        let data = sample();
        for alpha in [0.8, 0.9] {
            let plain = GravanoJoin::new(GravanoConfig::new(3, alpha));
            let counted = GravanoJoin::new(GravanoConfig::new(3, alpha).with_count_filter());
            let (p1, s1) = plain.run(&data, &data);
            let (p2, s2) = counted.run(&data, &data);
            assert_eq!(keys(&p1), keys(&p2), "alpha={alpha}");
            // The count filter can only reduce verification work.
            assert!(s2.edit_comparisons <= s1.edit_comparisons);
        }
    }

    #[test]
    fn self_pairs_have_similarity_one() {
        let data = sample();
        let join = GravanoJoin::new(GravanoConfig::new(3, 0.9));
        let (pairs, _) = join.run(&data, &data);
        for p in pairs.iter().filter(|p| p.r == p.s) {
            assert_eq!(p.similarity, 1.0);
        }
    }

    #[test]
    fn filters_reduce_comparisons() {
        // Many dissimilar strings sharing a frequent q-gram ("the"):
        // the length+position filters must prune most verifications.
        let mut data: Vec<String> = (0..50)
            .map(|i| format!("the {} {}", "x".repeat(i % 20 + 1), i))
            .collect();
        data.push("the aaaa".into());
        let join = GravanoJoin::new(GravanoConfig::new(3, 0.9));
        let (_, stats) = join.run(&data, &data);
        let n = data.len() as u64;
        assert!(
            stats.edit_comparisons < n * n / 4,
            "comparisons {} vs cross product {}",
            stats.edit_comparisons,
            n * n
        );
    }

    #[test]
    fn stats_consistency() {
        let data = sample();
        let join = GravanoJoin::new(GravanoConfig::new(3, 0.8));
        let (pairs, stats) = join.run(&data, &data);
        assert_eq!(stats.output_pairs as usize, pairs.len());
        assert_eq!(stats.edit_comparisons, stats.candidate_pairs);
        assert!(stats.join_tuples >= stats.candidate_pairs);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let join = GravanoJoin::new(GravanoConfig::new(3, 0.8));
        let (pairs, _) = join.run(&[], &[]);
        assert!(pairs.is_empty());
        let one = strings(&["ab"]);
        let (pairs, _) = join.run(&one, &one);
        assert_eq!(keys(&pairs), vec![(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0, 1]")]
    fn invalid_threshold_rejected() {
        GravanoConfig::new(3, 0.0);
    }
}
