//! Property-based tests for the relational engine: operators against naive
//! reference implementations on random relations.

use proptest::prelude::*;
use ssjoin_relational::{
    AggFunc, AggSpec, DataType, Distinct, ExecContext, Expr, Filter, GroupBy, HashJoin, MergeJoin,
    PlanNode, Relation, Scan, Schema, Sort, SortKey, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

fn int_relation(rows: Vec<(i64, i64)>) -> Arc<Relation> {
    let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
    let rows = rows
        .into_iter()
        .map(|(k, v)| vec![Value::Int(k), Value::Int(v)])
        .collect();
    Arc::new(Relation::new(schema, rows).unwrap())
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..8, -5i64..5), 0..40)
}

proptest! {
    /// Hash join and merge join agree with the nested-loop reference.
    #[test]
    fn joins_match_nested_loop(l in rows_strategy(), r in rows_strategy()) {
        let expect: Vec<Vec<Value>> = {
            let mut out = Vec::new();
            for &(lk, lv) in &l {
                for &(rk, rv) in &r {
                    if lk == rk {
                        out.push(vec![
                            Value::Int(lk), Value::Int(lv),
                            Value::Int(rk), Value::Int(rv),
                        ]);
                    }
                }
            }
            out.sort();
            out
        };
        let (lr, rr) = (int_relation(l), int_relation(r));
        let h = HashJoin::on(
            Box::new(Scan::new(lr.clone())),
            Box::new(Scan::new(rr.clone())),
            &[("k", "k")],
        )
        .execute(&mut ExecContext::new())
        .unwrap();
        let m = MergeJoin::on(Box::new(Scan::new(lr)), Box::new(Scan::new(rr)), &[("k", "k")])
            .execute(&mut ExecContext::new())
            .unwrap();
        prop_assert_eq!(h.sorted_rows(), expect.clone());
        prop_assert_eq!(m.sorted_rows(), expect);
    }

    /// GroupBy sums match a HashMap fold; HAVING filters exactly.
    #[test]
    fn group_by_matches_fold(rows in rows_strategy(), cutoff in -20i64..20) {
        let mut expect: HashMap<i64, (i64, i64)> = HashMap::new(); // k -> (count, sum)
        for &(k, v) in &rows {
            let e = expect.entry(k).or_insert((0, 0));
            e.0 += 1;
            e.1 += v;
        }
        let g = GroupBy::new(
            Box::new(Scan::new(int_relation(rows))),
            &["k"],
            vec![
                AggSpec::new(AggFunc::Count, Expr::lit(1i64), "n"),
                AggSpec::new(AggFunc::Sum, Expr::col("v"), "sv"),
            ],
        )
        .with_having(Expr::col("sv").ge(Expr::lit(cutoff)));
        let out = g.execute(&mut ExecContext::new()).unwrap();
        for row in out.rows() {
            let k = row[0].as_i64().unwrap();
            let (n, sv) = expect[&k];
            prop_assert_eq!(row[1].as_i64().unwrap(), n);
            prop_assert_eq!(row[2].as_i64().unwrap(), sv);
            prop_assert!(sv >= cutoff);
        }
        let expected_groups = expect.values().filter(|&&(_, sv)| sv >= cutoff).count();
        prop_assert_eq!(out.len(), expected_groups);
    }

    /// Distinct removes exactly the duplicates; Sort orders totally.
    #[test]
    fn distinct_and_sort(rows in rows_strategy()) {
        let rel = int_relation(rows.clone());
        let d = Distinct::new(Box::new(Scan::new(rel.clone())))
            .execute(&mut ExecContext::new())
            .unwrap();
        let unique: std::collections::HashSet<(i64, i64)> = rows.iter().copied().collect();
        prop_assert_eq!(d.len(), unique.len());

        let s = Sort::new(
            Box::new(Scan::new(rel)),
            vec![SortKey::asc("k"), SortKey::desc("v")],
        )
        .execute(&mut ExecContext::new())
        .unwrap();
        for w in s.rows().windows(2) {
            let (k0, v0) = (w[0][0].as_i64().unwrap(), w[0][1].as_i64().unwrap());
            let (k1, v1) = (w[1][0].as_i64().unwrap(), w[1][1].as_i64().unwrap());
            prop_assert!(k0 < k1 || (k0 == k1 && v0 >= v1));
        }
    }

    /// Filter keeps exactly the rows satisfying the predicate.
    #[test]
    fn filter_is_exact(rows in rows_strategy(), cut in -5i64..5) {
        let rel = int_relation(rows.clone());
        let out = Filter::new(
            Box::new(Scan::new(rel)),
            Expr::col("v").gt(Expr::lit(cut)),
        )
        .execute(&mut ExecContext::new())
        .unwrap();
        let expect = rows.iter().filter(|&&(_, v)| v > cut).count();
        prop_assert_eq!(out.len(), expect);
        for row in out.rows() {
            prop_assert!(row[1].as_i64().unwrap() > cut);
        }
    }
}
