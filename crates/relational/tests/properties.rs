//! Property-based tests for the relational engine: operators against naive
//! reference implementations on random relations, driven by a seeded PRNG
//! so every failure is reproducible from the iteration's seed.

use ssjoin_prng::{Rng, StdRng};
use ssjoin_relational::{
    AggFunc, AggSpec, DataType, Distinct, ExecContext, Expr, Filter, GroupBy, HashJoin, MergeJoin,
    PlanNode, Relation, Scan, Schema, Sort, SortKey, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

fn int_relation(rows: Vec<(i64, i64)>) -> Arc<Relation> {
    let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
    let rows = rows
        .into_iter()
        .map(|(k, v)| vec![Value::Int(k), Value::Int(v)])
        .collect();
    Arc::new(Relation::new(schema, rows).unwrap())
}

/// 0–39 rows with keys in 0..8 (collision-heavy) and values in -5..5.
fn random_rows(rng: &mut StdRng) -> Vec<(i64, i64)> {
    let n = rng.gen_range(0usize..40);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0u32..8) as i64,
                rng.gen_range(0u32..10) as i64 - 5,
            )
        })
        .collect()
}

/// Hash join and merge join agree with the nested-loop reference.
#[test]
fn joins_match_nested_loop() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x101 + seed);
        let l = random_rows(&mut rng);
        let r = random_rows(&mut rng);
        let expect: Vec<Vec<Value>> = {
            let mut out = Vec::new();
            for &(lk, lv) in &l {
                for &(rk, rv) in &r {
                    if lk == rk {
                        out.push(vec![
                            Value::Int(lk),
                            Value::Int(lv),
                            Value::Int(rk),
                            Value::Int(rv),
                        ]);
                    }
                }
            }
            out.sort();
            out
        };
        let (lr, rr) = (int_relation(l), int_relation(r));
        let h = HashJoin::on(
            Box::new(Scan::new(lr.clone())),
            Box::new(Scan::new(rr.clone())),
            &[("k", "k")],
        )
        .execute(&mut ExecContext::new())
        .unwrap();
        let m = MergeJoin::on(
            Box::new(Scan::new(lr)),
            Box::new(Scan::new(rr)),
            &[("k", "k")],
        )
        .execute(&mut ExecContext::new())
        .unwrap();
        assert_eq!(h.sorted_rows(), expect, "hash join, seed {seed}");
        assert_eq!(m.sorted_rows(), expect, "merge join, seed {seed}");
    }
}

/// GroupBy sums match a HashMap fold; HAVING filters exactly.
#[test]
fn group_by_matches_fold() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x202 + seed);
        let rows = random_rows(&mut rng);
        let cutoff = rng.gen_range(0u32..40) as i64 - 20;
        let mut expect: HashMap<i64, (i64, i64)> = HashMap::new(); // k -> (count, sum)
        for &(k, v) in &rows {
            let e = expect.entry(k).or_insert((0, 0));
            e.0 += 1;
            e.1 += v;
        }
        let g = GroupBy::new(
            Box::new(Scan::new(int_relation(rows))),
            &["k"],
            vec![
                AggSpec::new(AggFunc::Count, Expr::lit(1i64), "n"),
                AggSpec::new(AggFunc::Sum, Expr::col("v"), "sv"),
            ],
        )
        .with_having(Expr::col("sv").ge(Expr::lit(cutoff)));
        let out = g.execute(&mut ExecContext::new()).unwrap();
        for row in out.rows() {
            let k = row[0].as_i64().unwrap();
            let (n, sv) = expect[&k];
            assert_eq!(row[1].as_i64().unwrap(), n, "seed {seed}");
            assert_eq!(row[2].as_i64().unwrap(), sv, "seed {seed}");
            assert!(sv >= cutoff, "seed {seed}");
        }
        let expected_groups = expect.values().filter(|&&(_, sv)| sv >= cutoff).count();
        assert_eq!(out.len(), expected_groups, "seed {seed}");
    }
}

/// Distinct removes exactly the duplicates; Sort orders totally.
#[test]
fn distinct_and_sort() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x303 + seed);
        let rows = random_rows(&mut rng);
        let rel = int_relation(rows.clone());
        let d = Distinct::new(Box::new(Scan::new(rel.clone())))
            .execute(&mut ExecContext::new())
            .unwrap();
        let unique: std::collections::HashSet<(i64, i64)> = rows.iter().copied().collect();
        assert_eq!(d.len(), unique.len(), "seed {seed}");

        let s = Sort::new(
            Box::new(Scan::new(rel)),
            vec![SortKey::asc("k"), SortKey::desc("v")],
        )
        .execute(&mut ExecContext::new())
        .unwrap();
        for w in s.rows().windows(2) {
            let (k0, v0) = (w[0][0].as_i64().unwrap(), w[0][1].as_i64().unwrap());
            let (k1, v1) = (w[1][0].as_i64().unwrap(), w[1][1].as_i64().unwrap());
            assert!(k0 < k1 || (k0 == k1 && v0 >= v1), "seed {seed}");
        }
    }
}

/// Filter keeps exactly the rows satisfying the predicate.
#[test]
fn filter_is_exact() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x404 + seed);
        let rows = random_rows(&mut rng);
        let cut = rng.gen_range(0u32..10) as i64 - 5;
        let rel = int_relation(rows.clone());
        let out = Filter::new(Box::new(Scan::new(rel)), Expr::col("v").gt(Expr::lit(cut)))
            .execute(&mut ExecContext::new())
            .unwrap();
        let expect = rows.iter().filter(|&&(_, v)| v > cut).count();
        assert_eq!(out.len(), expect, "seed {seed}");
        for row in out.rows() {
            assert!(row[1].as_i64().unwrap() > cut, "seed {seed}");
        }
    }
}
