//! A minimal in-memory relational execution engine.
//!
//! The SSJoin paper implements its operator *compositionally*, as trees of
//! ordinary relational operators (equi-join, group-by with HAVING, and the
//! groupwise-processing operator of Chatziantoniou & Ross) executed by
//! Microsoft SQL Server 2005. This crate is the substrate standing in for
//! that engine: enough of a relational executor to express the operator
//! trees of Figures 7, 8, and 9 of the paper and run them at benchmark
//! scale.
//!
//! Design notes:
//!
//! * **Materialized execution.** Every operator consumes and produces whole
//!   [`Relation`]s. Volcano-style iterators buy nothing at the dataset sizes
//!   of the paper's evaluation (25K–330K rows) and would obscure the
//!   operator trees the tests assert on.
//! * **Named columns, bound once.** Expressions reference columns by name
//!   and are bound to positional indexes once per operator execution, so
//!   per-row evaluation is index arithmetic.
//! * **UDF hooks.** Scalar Rust closures can be registered in expressions —
//!   the paper's post-SSJoin verification filters (edit similarity, Jaccard
//!   resemblance, GES) are exactly such UDFs.
//! * **Execution statistics.** Every plan node reports output cardinality
//!   and wall time through [`ExecContext`], because the paper's figures are
//!   stacked per-phase breakdowns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
pub mod logical;
pub mod ops;
mod relation;
mod schema;
mod value;

pub use error::{EngineError, Result};
pub use expr::{AggFunc, BoundExpr, CmpOp, Expr};
pub use logical::LogicalPlan;
pub use ops::{
    AggSpec, Distinct, ExecContext, Filter, GroupBy, Groupwise, HashJoin, Limit, MergeJoin,
    OpStats, PlanNode, Project, Scan, Sort, SortKey, TopN, Union,
};
pub use relation::{Relation, Row};
pub use schema::{Field, Schema};
pub use value::{DataType, Value};
