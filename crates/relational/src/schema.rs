//! Schemas: ordered, named, typed columns.

use crate::{DataType, EngineError, Result};
use std::fmt;
use std::sync::Arc;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name. Names must be unique within a schema.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields describing a relation's columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    ///
    /// # Panics
    /// Panics if two fields share a name — schemas with duplicate names are
    /// construction bugs, not runtime conditions.
    pub fn new(fields: Vec<Field>) -> Arc<Self> {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[i + 1..] {
                assert_ne!(f.name, g.name, "duplicate column name {:?}", f.name);
            }
        }
        Arc::new(Self { fields })
    }

    /// Build a schema from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Arc<Self> {
        Self::new(cols.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| EngineError::UnknownColumn {
                name: name.to_string(),
                available: self.fields.iter().map(|f| f.name.clone()).collect(),
            })
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Concatenate two schemas, prefixing clashing names from the right side
    /// with `right_prefix` (used by joins).
    pub fn join(&self, other: &Schema, right_prefix: &str) -> Arc<Schema> {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if self.index_of(&f.name).is_ok() {
                format!("{right_prefix}{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.dtype));
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_field_lookup() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.index_of("a").unwrap(), 0);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.field("b").unwrap().dtype, DataType::Str);
        assert!(matches!(
            s.index_of("z"),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_panic() {
        Schema::of(&[("a", DataType::Int), ("a", DataType::Str)]);
    }

    #[test]
    fn join_prefixes_clashes() {
        let l = Schema::of(&[("id", DataType::Int), ("x", DataType::Str)]);
        let r = Schema::of(&[("id", DataType::Int), ("y", DataType::Str)]);
        let j = l.join(&r, "s_");
        assert_eq!(j.names(), vec!["id", "x", "s_id", "y"]);
    }

    #[test]
    fn display() {
        let s = Schema::of(&[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a: int)");
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
