//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Nullable boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (shared, cheap to clone).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A scalar value.
///
/// Equality, ordering, and hashing are *total*: `Null == Null`, floats
/// compare with `total_cmp` (so `NaN == NaN` for grouping purposes), and
/// values of different types order by type discriminant. This makes `Value`
/// directly usable as a grouping/join key, which is what the engine needs;
/// SQL three-valued logic is deliberately not modeled.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent value. Groups and joins treat all nulls as equal.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Shared string.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as boolean (for filter predicates). `Null` is false.
    pub fn truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view: integers widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Normalize -0.0 to +0.0 so `total_cmp` agrees with the hash normalization.
fn norm_f(f: f64) -> f64 {
    if f == 0.0 {
        0.0
    } else {
        f
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => norm_f(*a).total_cmp(&norm_f(*b)),
            // Mixed numerics compare numerically so Int(2) == the key of
            // Float(2.0) never arises from engine-produced data (aggregates
            // keep their types), but user data may mix them.
            (Int(a), Float(b)) => (*a as f64).total_cmp(&norm_f(*b)),
            (Float(a), Int(b)) => norm_f(*a).total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(2);
                // Hash integers as floats when they are exactly representable
                // would be required for Int/Float cross-equality hashing; the
                // engine only mixes them in comparisons, never as join keys,
                // so hash by native representation.
                i.hash(state);
            }
            Value::Float(f) => {
                state.write_u8(3);
                // Normalize -0.0 and NaN payloads so Eq/Hash stay consistent.
                let f = if *f == 0.0 { 0.0f64 } else { *f };
                let bits = if f.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    f.to_bits()
                };
                bits.hash(state);
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_equality() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_ne!(Value::Int(1), Value::str("1"));
    }

    #[test]
    fn hash_consistent_with_eq() {
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(f64::NAN))
        );
        assert_eq!(hash_of(&Value::str("abc")), hash_of(&Value::str("abc")));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn cross_type_ordering_stable() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Float(9.9) < Value::str(""));
        // Mixed numerics compare numerically.
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7usize), Value::Int(7));
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Null.as_f64(), None);
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(1).truthy());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }
}
