//! Logical plans with a rule-based optimizer.
//!
//! §6/§7 of the SSJoin paper argue for an *operator-centric* design exactly
//! so that a query optimizer can make cost-conscious choices. This module is
//! the optimizer-side of that story for the bundled engine: a logical plan
//! algebra, a conservative rule-based rewriter, and lowering to the physical
//! operators — with `EXPLAIN`-style rendering so tests (and humans) can see
//! which rewrites fired.
//!
//! Implemented rules:
//!
//! * **select fusion** — adjacent `Select` nodes merge into one conjunction;
//! * **select pushdown** — a `Select` over a `Join` whose predicate only
//!   touches one input's columns moves below the join; a `Select` over a
//!   pass-through `Project` moves below it;
//! * **top-n fusion** — `Limit(Sort(…))` lowers to the heap-based `TopN`
//!   operator instead of a full sort.

use crate::ops::{
    Distinct, ExecContext, Filter, GroupBy, HashJoin, Limit, PlanNode, Project, Scan, Sort,
    SortKey, TopN,
};
use crate::{AggSpec, EngineError, Expr, Relation, Result, Schema};
use std::sync::Arc;

/// A logical relational plan.
pub enum LogicalPlan {
    /// Base table.
    Scan {
        /// The table.
        relation: Arc<Relation>,
        /// Statistics label.
        label: String,
    },
    /// Row filter.
    Select {
        /// Input.
        input: Box<LogicalPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Column projection / computation.
    Project {
        /// Input.
        input: Box<LogicalPlan>,
        /// `(output name, expression)` pairs.
        columns: Vec<(String, Expr)>,
    },
    /// Inner equi-join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// `(left column, right column)` key pairs.
        keys: Vec<(String, String)>,
    },
    /// Grouped aggregation.
    GroupBy {
        /// Input.
        input: Box<LogicalPlan>,
        /// Grouping columns.
        keys: Vec<String>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
        /// Optional HAVING predicate.
        having: Option<Expr>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input.
        input: Box<LogicalPlan>,
    },
    /// Total order.
    Sort {
        /// Input.
        input: Box<LogicalPlan>,
        /// Sort keys.
        keys: Vec<SortKey>,
    },
    /// First-n.
    Limit {
        /// Input.
        input: Box<LogicalPlan>,
        /// Row budget.
        n: usize,
    },
}

impl LogicalPlan {
    /// Scan builder.
    pub fn scan(relation: Arc<Relation>, label: impl Into<String>) -> Self {
        LogicalPlan::Scan {
            relation,
            label: label.into(),
        }
    }

    /// Wrap in a Select.
    pub fn select(self, predicate: Expr) -> Self {
        LogicalPlan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wrap in a Project.
    pub fn project(self, columns: Vec<(String, Expr)>) -> Self {
        LogicalPlan::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// Join with another plan.
    pub fn join(self, right: LogicalPlan, keys: &[(&str, &str)]) -> Self {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            keys: keys
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        }
    }

    /// Wrap in a GroupBy.
    pub fn group_by(self, keys: &[&str], aggs: Vec<AggSpec>, having: Option<Expr>) -> Self {
        LogicalPlan::GroupBy {
            input: Box::new(self),
            keys: keys.iter().map(|s| s.to_string()).collect(),
            aggs,
            having,
        }
    }

    /// Wrap in Distinct.
    pub fn distinct(self) -> Self {
        LogicalPlan::Distinct {
            input: Box::new(self),
        }
    }

    /// Wrap in Sort.
    pub fn sort(self, keys: Vec<SortKey>) -> Self {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Wrap in Limit.
    pub fn limit(self, n: usize) -> Self {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Output column names of this node (order matters; join columns follow
    /// the physical `s_`-prefixing convention for clashes).
    pub fn output_columns(&self) -> Vec<String> {
        match self {
            LogicalPlan::Scan { relation, .. } => relation
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.output_columns(),
            LogicalPlan::Project { columns, .. } => {
                columns.iter().map(|(n, _)| n.clone()).collect()
            }
            LogicalPlan::Join { left, right, .. } => {
                let l = left.output_columns();
                let mut out = l.clone();
                for c in right.output_columns() {
                    if l.contains(&c) {
                        out.push(format!("s_{c}"));
                    } else {
                        out.push(c);
                    }
                }
                out
            }
            LogicalPlan::GroupBy { keys, aggs, .. } => {
                let mut out = keys.clone();
                out.extend(aggs.iter().map(|a| a.output.clone()));
                out
            }
        }
    }

    /// Apply the rewrite rules until a fixpoint (bounded).
    pub fn optimize(self) -> Self {
        let mut plan = self;
        for _ in 0..16 {
            let (next, changed) = plan.rewrite_once();
            plan = next;
            if !changed {
                break;
            }
        }
        plan
    }

    fn rewrite_once(self) -> (Self, bool) {
        match self {
            // ── select fusion ────────────────────────────────────────────
            LogicalPlan::Select { input, predicate } => {
                if let LogicalPlan::Select {
                    input: inner,
                    predicate: p2,
                } = *input
                {
                    return (
                        LogicalPlan::Select {
                            input: inner,
                            predicate: p2.and(predicate),
                        },
                        true,
                    );
                }
                // ── pushdown below a join, per conjunct ──────────────────
                if let LogicalPlan::Join { left, right, keys } = *input {
                    let left_cols = left.output_columns();
                    let right_cols = right.output_columns();
                    let mut to_left: Vec<Expr> = Vec::new();
                    let mut to_right: Vec<Expr> = Vec::new();
                    let mut stay: Vec<Expr> = Vec::new();
                    for conjunct in split_and(predicate) {
                        let cols = expr_columns(&conjunct);
                        let all_left =
                            !cols.is_empty() && cols.iter().all(|c| left_cols.contains(c));
                        // Right columns must be addressed by their
                        // *unprefixed* names to push below the join; only
                        // unclashed names qualify.
                        let all_right = !cols.is_empty()
                            && cols
                                .iter()
                                .all(|c| right_cols.contains(c) && !left_cols.contains(c));
                        if all_left {
                            to_left.push(conjunct);
                        } else if all_right {
                            to_right.push(conjunct);
                        } else {
                            stay.push(conjunct);
                        }
                    }
                    if to_left.is_empty() && to_right.is_empty() {
                        let predicate = join_and(stay).expect("conjuncts preserved");
                        return recurse(LogicalPlan::Select {
                            input: Box::new(LogicalPlan::Join { left, right, keys }),
                            predicate,
                        });
                    }
                    let mut new_left = *left;
                    if let Some(p) = join_and(to_left) {
                        new_left = LogicalPlan::Select {
                            input: Box::new(new_left),
                            predicate: p,
                        };
                    }
                    let mut new_right = *right;
                    if let Some(p) = join_and(to_right) {
                        new_right = LogicalPlan::Select {
                            input: Box::new(new_right),
                            predicate: p,
                        };
                    }
                    let mut plan = LogicalPlan::Join {
                        left: Box::new(new_left),
                        right: Box::new(new_right),
                        keys,
                    };
                    if let Some(p) = join_and(stay) {
                        plan = LogicalPlan::Select {
                            input: Box::new(plan),
                            predicate: p,
                        };
                    }
                    return (plan, true);
                }
                // ── pushdown below a pass-through projection ─────────────
                if let LogicalPlan::Project {
                    input: inner,
                    columns,
                } = *input
                {
                    let cols = expr_columns(&predicate);
                    let identity = |name: &String| {
                        columns
                            .iter()
                            .any(|(n, e)| n == name && matches!(e, Expr::Col(c) if c == name))
                    };
                    if !cols.is_empty() && cols.iter().all(identity) {
                        return (
                            LogicalPlan::Project {
                                input: Box::new(LogicalPlan::Select {
                                    input: inner,
                                    predicate,
                                }),
                                columns,
                            },
                            true,
                        );
                    }
                    return recurse(LogicalPlan::Select {
                        input: Box::new(LogicalPlan::Project {
                            input: inner,
                            columns,
                        }),
                        predicate,
                    });
                }
                recurse(LogicalPlan::Select { input, predicate })
            }
            other => recurse(other),
        }
    }

    /// Lower to physical operators. `Limit(Sort(…))` becomes [`TopN`].
    pub fn to_physical(&self) -> Box<dyn PlanNode> {
        match self {
            LogicalPlan::Scan { relation, label } => {
                Box::new(Scan::labeled(relation.clone(), label.clone()))
            }
            LogicalPlan::Select { input, predicate } => {
                Box::new(Filter::new(input.to_physical(), predicate.clone()))
            }
            LogicalPlan::Project { input, columns } => {
                Box::new(Project::new(input.to_physical(), columns.clone()))
            }
            LogicalPlan::Join { left, right, keys } => Box::new(HashJoin::new(
                left.to_physical(),
                right.to_physical(),
                keys.clone(),
            )),
            LogicalPlan::GroupBy {
                input,
                keys,
                aggs,
                having,
            } => {
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                let mut g = GroupBy::new(input.to_physical(), &key_refs, aggs.clone());
                if let Some(h) = having {
                    g = g.with_having(h.clone());
                }
                Box::new(g)
            }
            LogicalPlan::Distinct { input } => Box::new(Distinct::new(input.to_physical())),
            LogicalPlan::Sort { input, keys } => {
                Box::new(Sort::new(input.to_physical(), keys.clone()))
            }
            LogicalPlan::Limit { input, n } => {
                if let LogicalPlan::Sort {
                    input: sorted,
                    keys,
                } = &**input
                {
                    return Box::new(TopN::new(sorted.to_physical(), keys.clone(), *n));
                }
                Box::new(Limit::new(input.to_physical(), *n))
            }
        }
    }

    /// Optimize, lower, and execute.
    pub fn run(self) -> Result<(Relation, ExecContext)> {
        let physical = self.optimize().to_physical();
        let mut ctx = ExecContext::new();
        let out = physical.execute(&mut ctx)?;
        Ok((out, ctx))
    }

    /// EXPLAIN-style tree rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { relation, label } => {
                out.push_str(&format!("{pad}Scan {label} [{} rows]\n", relation.len()));
            }
            LogicalPlan::Select { input, predicate } => {
                out.push_str(&format!("{pad}Select {predicate:?}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Project { input, columns } => {
                let names: Vec<&str> = columns.iter().map(|(n, _)| n.as_str()).collect();
                out.push_str(&format!("{pad}Project {names:?}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Join { left, right, keys } => {
                out.push_str(&format!("{pad}Join {keys:?}\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            LogicalPlan::GroupBy {
                input,
                keys,
                aggs,
                having,
            } => {
                let agg_names: Vec<&str> = aggs.iter().map(|a| a.output.as_str()).collect();
                out.push_str(&format!(
                    "{pad}GroupBy keys={keys:?} aggs={agg_names:?} having={}\n",
                    having.is_some()
                ));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let names: Vec<&str> = keys.iter().map(|k| k.column.as_str()).collect();
                out.push_str(&format!("{pad}Sort {names:?}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Recurse the rewrite into children, preserving this node.
fn recurse(plan: LogicalPlan) -> (LogicalPlan, bool) {
    match plan {
        LogicalPlan::Scan { .. } => (plan, false),
        LogicalPlan::Select { input, predicate } => {
            let (inner, changed) = input.rewrite_once();
            (
                LogicalPlan::Select {
                    input: Box::new(inner),
                    predicate,
                },
                changed,
            )
        }
        LogicalPlan::Project { input, columns } => {
            let (inner, changed) = input.rewrite_once();
            (
                LogicalPlan::Project {
                    input: Box::new(inner),
                    columns,
                },
                changed,
            )
        }
        LogicalPlan::Join { left, right, keys } => {
            let (l, c1) = left.rewrite_once();
            let (r, c2) = right.rewrite_once();
            (
                LogicalPlan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    keys,
                },
                c1 || c2,
            )
        }
        LogicalPlan::GroupBy {
            input,
            keys,
            aggs,
            having,
        } => {
            let (inner, changed) = input.rewrite_once();
            (
                LogicalPlan::GroupBy {
                    input: Box::new(inner),
                    keys,
                    aggs,
                    having,
                },
                changed,
            )
        }
        LogicalPlan::Distinct { input } => {
            let (inner, changed) = input.rewrite_once();
            (
                LogicalPlan::Distinct {
                    input: Box::new(inner),
                },
                changed,
            )
        }
        LogicalPlan::Sort { input, keys } => {
            let (inner, changed) = input.rewrite_once();
            (
                LogicalPlan::Sort {
                    input: Box::new(inner),
                    keys,
                },
                changed,
            )
        }
        LogicalPlan::Limit { input, n } => {
            let (inner, changed) = input.rewrite_once();
            (
                LogicalPlan::Limit {
                    input: Box::new(inner),
                    n,
                },
                changed,
            )
        }
    }
}

/// Split a predicate into its top-level AND conjuncts.
pub fn split_and(expr: Expr) -> Vec<Expr> {
    match expr {
        Expr::And(a, b) => {
            let mut out = split_and(*a);
            out.extend(split_and(*b));
            out
        }
        other => vec![other],
    }
}

/// Rebuild a conjunction from conjuncts (`None` for an empty list).
pub fn join_and(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let first = if conjuncts.is_empty() {
        return None;
    } else {
        conjuncts.remove(0)
    };
    Some(conjuncts.into_iter().fold(first, |acc, c| acc.and(c)))
}

/// The column names an expression references.
pub fn expr_columns(expr: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    collect_columns(expr, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_columns(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Col(name) => out.push(name.clone()),
        Expr::Lit(_) => {}
        Expr::Cmp { left, right, .. }
        | Expr::Arith { left, right, .. }
        | Expr::MinMax { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_columns(a, out);
            collect_columns(b, out);
        }
        Expr::Not(e) => collect_columns(e, out),
        Expr::Udf { args, .. } => {
            for a in args {
                collect_columns(a, out);
            }
        }
    }
}

/// Validate that a logical plan's referenced columns resolve; returns the
/// output schema names (cheap static check used by tests).
pub fn check_columns(plan: &LogicalPlan) -> Result<Vec<String>> {
    // `output_columns` already walks the tree; verifying Select/Join inputs
    // is done by executing against empty prefixes in tests. Here we only
    // ensure join keys exist.
    fn walk(plan: &LogicalPlan) -> Result<()> {
        match plan {
            LogicalPlan::Scan { .. } => Ok(()),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::GroupBy { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => walk(input),
            LogicalPlan::Join { left, right, keys } => {
                let l = left.output_columns();
                let r = right.output_columns();
                for (lk, rk) in keys {
                    if !l.contains(lk) {
                        return Err(EngineError::UnknownColumn {
                            name: lk.clone(),
                            available: l,
                        });
                    }
                    if !r.contains(rk) {
                        return Err(EngineError::UnknownColumn {
                            name: rk.clone(),
                            available: r,
                        });
                    }
                }
                walk(left)?;
                walk(right)
            }
        }
    }
    walk(plan)?;
    Ok(plan.output_columns())
}

/// Build a schema value for tests (re-exported convenience).
pub fn schema_of(cols: &[(&str, crate::DataType)]) -> Arc<Schema> {
    Schema::of(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggFunc, DataType, Value};

    fn orders() -> Arc<Relation> {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("customer", DataType::Str),
            ("amount", DataType::Int),
        ]);
        let rows = (0..100)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(format!("c{}", i % 10)),
                    Value::Int(i * 3 % 50),
                ]
            })
            .collect();
        Arc::new(Relation::new(schema, rows).unwrap())
    }

    fn customers() -> Arc<Relation> {
        let schema = Schema::of(&[("name", DataType::Str), ("region", DataType::Str)]);
        let rows = (0..10)
            .map(|i| {
                vec![
                    Value::str(format!("c{i}")),
                    Value::str(if i % 2 == 0 { "west" } else { "east" }),
                ]
            })
            .collect();
        Arc::new(Relation::new(schema, rows).unwrap())
    }

    fn query() -> LogicalPlan {
        LogicalPlan::scan(orders(), "orders")
            .join(
                LogicalPlan::scan(customers(), "customers"),
                &[("customer", "name")],
            )
            .select(Expr::col("amount").gt(Expr::lit(20i64)))
            .select(Expr::col("region").eq(Expr::lit("west")))
    }

    #[test]
    fn optimization_preserves_results() {
        let raw = query().to_physical();
        let mut ctx = ExecContext::new();
        let expect = raw.execute(&mut ctx).unwrap();

        let (got, _) = query().run().unwrap();
        assert_eq!(got.sorted_rows(), expect.sorted_rows());
        assert!(!got.is_empty());
    }

    #[test]
    fn selects_fuse_and_push_below_join() {
        let optimized = query().optimize();
        let plan = optimized.explain();
        // Both predicates must now sit below the join: the amount filter on
        // the orders side, the region filter on the customers side.
        let join_pos = plan.find("Join").unwrap();
        let amount_pos = plan.find("col(amount)").unwrap();
        let region_pos = plan.find("col(region)").unwrap();
        assert!(amount_pos > join_pos, "amount filter below join:\n{plan}");
        assert!(region_pos > join_pos, "region filter below join:\n{plan}");
    }

    #[test]
    fn pushdown_reduces_join_input() {
        let (_, raw_ctx) = {
            let physical = query().to_physical();
            let mut ctx = ExecContext::new();
            let out = physical.execute(&mut ctx).unwrap();
            (out, ctx)
        };
        let (_, opt_ctx) = query().run().unwrap();
        let raw_join_rows = raw_ctx.rows_for("hash_join");
        let opt_join_rows = opt_ctx.rows_for("hash_join");
        assert!(
            opt_join_rows < raw_join_rows,
            "optimized join rows {opt_join_rows} vs raw {raw_join_rows}"
        );
    }

    #[test]
    fn select_pushes_through_identity_projection() {
        let plan = LogicalPlan::scan(orders(), "orders")
            .project(vec![
                ("customer".into(), Expr::col("customer")),
                ("amount".into(), Expr::col("amount")),
            ])
            .select(Expr::col("amount").gt(Expr::lit(10i64)));
        let optimized = plan.optimize();
        let rendered = optimized.explain();
        let project_pos = rendered.find("Project").unwrap();
        let select_pos = rendered.find("Select").unwrap();
        assert!(select_pos > project_pos, "{rendered}");
    }

    #[test]
    fn select_not_pushed_through_computed_projection() {
        let plan = LogicalPlan::scan(orders(), "orders")
            .project(vec![(
                "doubled".into(),
                Expr::col("amount").mul(Expr::lit(2i64)),
            )])
            .select(Expr::col("doubled").gt(Expr::lit(10i64)));
        let rendered = plan.optimize().explain();
        let project_pos = rendered.find("Project").unwrap();
        let select_pos = rendered.find("Select").unwrap();
        assert!(select_pos < project_pos, "{rendered}");
        // And it still executes correctly.
        let (out, _) = LogicalPlan::scan(orders(), "orders")
            .project(vec![(
                "doubled".into(),
                Expr::col("amount").mul(Expr::lit(2i64)),
            )])
            .select(Expr::col("doubled").gt(Expr::lit(10i64)))
            .run()
            .unwrap();
        assert!(out.rows().iter().all(|r| r[0].as_i64().unwrap() > 10));
    }

    #[test]
    fn limit_sort_lowers_to_topn() {
        let plan = LogicalPlan::scan(orders(), "orders")
            .sort(vec![SortKey::desc("amount")])
            .limit(5);
        let (out, ctx) = plan.run().unwrap();
        assert_eq!(out.len(), 5);
        assert!(ctx.stats().iter().any(|s| s.operator == "top_n"));
        assert!(!ctx.stats().iter().any(|s| s.operator == "sort"));
    }

    #[test]
    fn group_by_lowering_with_having() {
        let plan = LogicalPlan::scan(orders(), "orders")
            .group_by(
                &["customer"],
                vec![AggSpec::new(AggFunc::Sum, Expr::col("amount"), "total")],
                Some(Expr::col("total").gt(Expr::lit(200i64))),
            )
            .sort(vec![SortKey::desc("total")]);
        let (out, _) = plan.run().unwrap();
        for row in out.rows() {
            assert!(row[1].as_i64().unwrap() > 200);
        }
    }

    #[test]
    fn check_columns_catches_bad_join_keys() {
        let plan = LogicalPlan::scan(orders(), "orders").join(
            LogicalPlan::scan(customers(), "customers"),
            &[("nope", "name")],
        );
        assert!(check_columns(&plan).is_err());
        let ok = query();
        let cols = check_columns(&ok).unwrap();
        assert!(cols.contains(&"region".to_string()));
    }

    #[test]
    fn explain_renders_tree() {
        let text = query().explain();
        assert!(text.contains("Scan orders [100 rows]"));
        assert!(text.contains("Join"));
        assert!(text.starts_with("Select"));
    }
}
