//! Engine error type.

use std::fmt;

/// Errors raised while building or executing plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A column name did not resolve against a schema.
    UnknownColumn {
        /// The name that failed to resolve.
        name: String,
        /// The columns that were available.
        available: Vec<String>,
    },
    /// An operation was applied to a value of the wrong type.
    TypeMismatch {
        /// Description of the operation.
        context: String,
    },
    /// Two relations that must share a schema do not.
    SchemaMismatch {
        /// Description of where the mismatch occurred.
        context: String,
    },
    /// A user-defined function failed.
    Udf {
        /// The UDF name.
        name: String,
        /// The failure message.
        message: String,
    },
    /// Plan construction or execution constraint violated.
    Plan(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownColumn { name, available } => {
                write!(f, "unknown column {name:?}; available: {available:?}")
            }
            EngineError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            EngineError::SchemaMismatch { context } => write!(f, "schema mismatch: {context}"),
            EngineError::Udf { name, message } => write!(f, "UDF {name:?} failed: {message}"),
            EngineError::Plan(msg) => write!(f, "plan error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
