//! Materialized relations (tables).

use crate::{EngineError, Result, Schema, Value};
use std::fmt;
use std::sync::Arc;

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// A materialized relation: a schema and a vector of rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a relation from rows, validating arity against the schema.
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>) -> Result<Self> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(EngineError::SchemaMismatch {
                    context: format!(
                        "row {i} has {} values, schema {} has {} columns",
                        row.len(),
                        schema,
                        schema.len()
                    ),
                });
            }
        }
        Ok(Self { schema, rows })
    }

    /// Build a relation without per-row validation (rows are trusted to
    /// match — used by operators that construct rows themselves).
    pub fn from_trusted_rows(schema: Arc<Schema>, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Self { schema, rows }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row, validating arity.
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                context: format!(
                    "pushed row has {} values, schema has {}",
                    row.len(),
                    self.schema.len()
                ),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// The values of one column, cloned.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Sort rows lexicographically by the given columns (ascending), in
    /// place. Stable.
    pub fn sort_by_columns(&mut self, names: &[&str]) -> Result<()> {
        let idxs: Vec<usize> = names
            .iter()
            .map(|n| self.schema.index_of(n))
            .collect::<Result<_>>()?;
        self.rows.sort_by(|a, b| {
            for &i in &idxs {
                let ord = a[i].cmp(&b[i]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(())
    }

    /// Rows as a set-like sorted vector — convenience for order-insensitive
    /// test assertions.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in self.rows.iter().take(20) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  … {} more rows", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    fn sample() -> Relation {
        let schema = Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]);
        Relation::new(
            schema,
            vec![
                vec![Value::Int(2), Value::str("b")],
                vec![Value::Int(1), Value::str("a")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_validated() {
        let schema = Schema::of(&[("id", DataType::Int)]);
        let bad = Relation::new(schema.clone(), vec![vec![Value::Int(1), Value::Int(2)]]);
        assert!(matches!(bad, Err(EngineError::SchemaMismatch { .. })));
        let mut rel = Relation::empty(schema);
        assert!(rel.push(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert!(rel.push(vec![Value::Int(1)]).is_ok());
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn column_extraction() {
        let rel = sample();
        assert_eq!(
            rel.column("id").unwrap(),
            vec![Value::Int(2), Value::Int(1)]
        );
        assert!(rel.column("nope").is_err());
    }

    #[test]
    fn sorting() {
        let mut rel = sample();
        rel.sort_by_columns(&["id"]).unwrap();
        assert_eq!(rel.rows()[0][0], Value::Int(1));
        assert_eq!(rel.rows()[1][0], Value::Int(2));
    }

    #[test]
    fn display_truncates() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rows: Vec<Row> = (0..25).map(|i| vec![Value::Int(i)]).collect();
        let rel = Relation::new(schema, rows).unwrap();
        let s = rel.to_string();
        assert!(s.contains("… 5 more rows"));
    }
}
