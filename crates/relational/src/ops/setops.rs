//! Duplicate elimination and union.

use crate::ops::{timed, ExecContext, PlanNode};
use crate::{EngineError, Relation, Result};
use std::collections::HashSet;

/// Duplicate elimination (SELECT DISTINCT): keeps the first occurrence of
/// each row, preserving input order.
pub struct Distinct {
    input: Box<dyn PlanNode>,
}

impl Distinct {
    /// Deduplicate `input`.
    pub fn new(input: Box<dyn PlanNode>) -> Self {
        Self { input }
    }
}

impl PlanNode for Distinct {
    fn name(&self) -> &str {
        "distinct"
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let input = self.input.execute(ctx)?;
            let schema = input.schema().clone();
            let mut seen = HashSet::with_capacity(input.len());
            let mut rows = Vec::new();
            for row in input.into_rows() {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            }
            Ok(Relation::from_trusted_rows(schema, rows))
        })
    }
}

/// Bag union (UNION ALL). Inputs must have identical schemas.
pub struct Union {
    left: Box<dyn PlanNode>,
    right: Box<dyn PlanNode>,
}

impl Union {
    /// Concatenate `left` and `right`.
    pub fn new(left: Box<dyn PlanNode>, right: Box<dyn PlanNode>) -> Self {
        Self { left, right }
    }
}

impl PlanNode for Union {
    fn name(&self) -> &str {
        "union"
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let left = self.left.execute(ctx)?;
            let right = self.right.execute(ctx)?;
            if left.schema().names() != right.schema().names() {
                return Err(EngineError::SchemaMismatch {
                    context: format!("UNION of {} and {}", left.schema(), right.schema()),
                });
            }
            let schema = left.schema().clone();
            let mut rows = left.into_rows();
            rows.extend(right.into_rows());
            Ok(Relation::from_trusted_rows(schema, rows))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Scan;
    use crate::{DataType, Schema, Value};
    use std::sync::Arc;

    fn rel(vals: &[i64]) -> Box<dyn PlanNode> {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rows = vals.iter().map(|&v| vec![Value::Int(v)]).collect();
        Box::new(Scan::new(Arc::new(Relation::new(schema, rows).unwrap())))
    }

    #[test]
    fn distinct_preserves_first_occurrence_order() {
        let d = Distinct::new(rel(&[3, 1, 3, 2, 1]));
        let out = d.execute(&mut ExecContext::new()).unwrap();
        let xs: Vec<_> = out.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(xs, vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn union_all_concatenates() {
        let u = Union::new(rel(&[1, 2]), rel(&[2, 3]));
        let out = u.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn union_schema_mismatch() {
        let schema = Schema::of(&[("y", DataType::Int)]);
        let other = Box::new(Scan::new(Arc::new(Relation::empty(schema))));
        let u = Union::new(rel(&[1]), other);
        assert!(u.execute(&mut ExecContext::new()).is_err());
    }

    #[test]
    fn distinct_then_union_pipeline() {
        let u = Union::new(rel(&[1, 1]), rel(&[1]));
        let d = Distinct::new(Box::new(u));
        let out = d.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 1);
    }
}
