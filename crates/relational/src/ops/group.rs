//! Hash aggregation with HAVING.
//!
//! The basic SSJoin implementation (Figure 7 of the paper) is precisely
//! `GROUP BY (R.A, S.A) HAVING SUM(weight) ≥ α` over an equi-join, so the
//! aggregate operator is load-bearing for the whole reproduction.

use crate::ops::{timed, ExecContext, PlanNode};
use crate::{AggFunc, DataType, EngineError, Expr, Field, Relation, Result, Row, Schema, Value};
use std::collections::HashMap;

/// One aggregate: `func(input) AS output`.
#[derive(Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The argument expression (ignored by `Count`).
    pub input: Expr,
    /// Output column name.
    pub output: String,
}

impl AggSpec {
    /// Convenience constructor.
    pub fn new(func: AggFunc, input: Expr, output: impl Into<String>) -> Self {
        Self {
            func,
            input,
            output: output.into(),
        }
    }
}

/// Hash group-by with aggregates and an optional HAVING predicate evaluated
/// over the output row (keys followed by aggregate results).
pub struct GroupBy {
    input: Box<dyn PlanNode>,
    keys: Vec<String>,
    aggs: Vec<AggSpec>,
    having: Option<Expr>,
    label: String,
}

impl GroupBy {
    /// Group `input` by `keys`, computing `aggs`.
    pub fn new(input: Box<dyn PlanNode>, keys: &[&str], aggs: Vec<AggSpec>) -> Self {
        Self {
            input,
            keys: keys.iter().map(|s| s.to_string()).collect(),
            aggs,
            having: None,
            label: "group_by".to_string(),
        }
    }

    /// Attach a HAVING predicate (over the output schema).
    pub fn with_having(mut self, having: Expr) -> Self {
        self.having = Some(having);
        self
    }

    /// Override the statistics label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

#[derive(Clone, Debug)]
enum AggState {
    Count(i64),
    SumInt(i64),
    SumFloat(f64),
    SumEmpty,
    MinMax(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl AggState {
    fn init(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::SumEmpty,
            AggFunc::Min | AggFunc::Max => AggState::MinMax(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, func: AggFunc, v: Value) -> Result<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::SumEmpty => {
                *self = match v {
                    Value::Int(i) => AggState::SumInt(i),
                    Value::Float(f) => AggState::SumFloat(f),
                    Value::Null => AggState::SumEmpty,
                    other => {
                        return Err(EngineError::TypeMismatch {
                            context: format!("SUM over non-numeric value {other}"),
                        })
                    }
                };
            }
            AggState::SumInt(acc) => match v {
                Value::Int(i) => *acc += i,
                Value::Float(f) => *self = AggState::SumFloat(*acc as f64 + f),
                Value::Null => {}
                other => {
                    return Err(EngineError::TypeMismatch {
                        context: format!("SUM over non-numeric value {other}"),
                    })
                }
            },
            AggState::SumFloat(acc) => match v.as_f64() {
                Some(f) => *acc += f,
                None if v.is_null() => {}
                None => {
                    return Err(EngineError::TypeMismatch {
                        context: format!("SUM over non-numeric value {v}"),
                    })
                }
            },
            AggState::MinMax(cur) => {
                let keep = match (&cur, func) {
                    (None, _) => true,
                    (Some(c), AggFunc::Min) => v < *c,
                    (Some(c), AggFunc::Max) => v > *c,
                    _ => unreachable!("MinMax state only for Min/Max"),
                };
                if keep {
                    *cur = Some(v);
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(f) = v.as_f64() {
                    *sum += f;
                    *n += 1;
                } else if !v.is_null() {
                    return Err(EngineError::TypeMismatch {
                        context: format!("AVG over non-numeric value {v}"),
                    });
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumEmpty => Value::Int(0),
            AggState::SumInt(i) => Value::Int(i),
            AggState::SumFloat(f) => Value::Float(f),
            AggState::MinMax(v) => v.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

impl PlanNode for GroupBy {
    fn name(&self) -> &str {
        &self.label
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let input = self.input.execute(ctx)?;
            let key_idx: Vec<usize> = self
                .keys
                .iter()
                .map(|k| input.schema().index_of(k))
                .collect::<Result<_>>()?;
            let bound_args: Vec<crate::BoundExpr> = self
                .aggs
                .iter()
                .map(|a| a.input.bind(input.schema()))
                .collect::<Result<_>>()?;

            // Accumulate group states; remember first-seen order for
            // determinism.
            let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for row in input.rows() {
                let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
                let states = match groups.get_mut(&key) {
                    Some(s) => s,
                    None => {
                        order.push(key.clone());
                        groups.entry(key).or_insert_with(|| {
                            self.aggs.iter().map(|a| AggState::init(a.func)).collect()
                        })
                    }
                };
                for (state, (spec, arg)) in states.iter_mut().zip(self.aggs.iter().zip(&bound_args))
                {
                    let v = if spec.func == AggFunc::Count {
                        Value::Int(1)
                    } else {
                        arg.eval(row)?
                    };
                    state.update(spec.func, v)?;
                }
            }

            let mut rows: Vec<Row> = Vec::with_capacity(order.len());
            for key in order {
                let states = groups.remove(&key).expect("key recorded in order");
                let mut row = key;
                row.extend(states.into_iter().map(AggState::finish));
                rows.push(row);
            }

            let schema = self.output_schema(input.schema(), &rows)?;
            let rel = Relation::from_trusted_rows(schema, rows);

            match &self.having {
                None => Ok(rel),
                Some(pred) => {
                    let bound = pred.bind(rel.schema())?;
                    let schema = rel.schema().clone();
                    let mut kept = Vec::new();
                    for row in rel.into_rows() {
                        if bound.eval(&row)?.truthy() {
                            kept.push(row);
                        }
                    }
                    Ok(Relation::from_trusted_rows(schema, kept))
                }
            }
        })
    }
}

impl GroupBy {
    fn output_schema(&self, input: &Schema, rows: &[Row]) -> Result<std::sync::Arc<Schema>> {
        let mut fields: Vec<Field> = self
            .keys
            .iter()
            .map(|k| input.field(k).cloned())
            .collect::<Result<_>>()?;
        for (j, spec) in self.aggs.iter().enumerate() {
            let dtype = match spec.func {
                AggFunc::Count => DataType::Int,
                AggFunc::Avg => DataType::Float,
                _ => rows
                    .iter()
                    .find_map(|r| r[self.keys.len() + j].data_type())
                    .unwrap_or(DataType::Int),
            };
            fields.push(Field::new(spec.output.clone(), dtype));
        }
        Ok(Schema::new(fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Scan;
    use std::sync::Arc;

    fn input() -> Box<dyn PlanNode> {
        let schema = Schema::of(&[
            ("g", DataType::Str),
            ("x", DataType::Int),
            ("w", DataType::Float),
        ]);
        let rows = vec![
            vec![Value::str("a"), Value::Int(1), Value::Float(0.5)],
            vec![Value::str("a"), Value::Int(2), Value::Float(1.5)],
            vec![Value::str("b"), Value::Int(10), Value::Float(3.0)],
        ];
        Box::new(Scan::new(Arc::new(Relation::new(schema, rows).unwrap())))
    }

    #[test]
    fn count_sum_min_max_avg() {
        let g = GroupBy::new(
            input(),
            &["g"],
            vec![
                AggSpec::new(AggFunc::Count, Expr::lit(1i64), "n"),
                AggSpec::new(AggFunc::Sum, Expr::col("x"), "sx"),
                AggSpec::new(AggFunc::Min, Expr::col("x"), "mn"),
                AggSpec::new(AggFunc::Max, Expr::col("x"), "mx"),
                AggSpec::new(AggFunc::Avg, Expr::col("w"), "aw"),
            ],
        );
        let out = g.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 2);
        let mut rows = out.sorted_rows();
        rows.sort();
        let a = rows.iter().find(|r| r[0] == Value::str("a")).unwrap();
        assert_eq!(a[1], Value::Int(2));
        assert_eq!(a[2], Value::Int(3));
        assert_eq!(a[3], Value::Int(1));
        assert_eq!(a[4], Value::Int(2));
        assert_eq!(a[5], Value::Float(1.0));
    }

    #[test]
    fn having_filters_groups() {
        let g = GroupBy::new(
            input(),
            &["g"],
            vec![AggSpec::new(AggFunc::Sum, Expr::col("x"), "sx")],
        )
        .with_having(Expr::col("sx").ge(Expr::lit(5i64)));
        let out = g.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::str("b"));
    }

    #[test]
    fn sum_float_column() {
        let g = GroupBy::new(
            input(),
            &["g"],
            vec![AggSpec::new(AggFunc::Sum, Expr::col("w"), "sw")],
        );
        let out = g.execute(&mut ExecContext::new()).unwrap();
        let a = out.rows().iter().find(|r| r[0] == Value::str("a")).unwrap();
        assert_eq!(a[1], Value::Float(2.0));
    }

    #[test]
    fn group_on_expression_input() {
        // Aggregate over a computed expression.
        let g = GroupBy::new(
            input(),
            &["g"],
            vec![AggSpec::new(
                AggFunc::Sum,
                Expr::col("x").mul(Expr::lit(2i64)),
                "sx2",
            )],
        );
        let out = g.execute(&mut ExecContext::new()).unwrap();
        let a = out.rows().iter().find(|r| r[0] == Value::str("a")).unwrap();
        assert_eq!(a[1], Value::Int(6));
    }

    #[test]
    fn empty_input_no_groups() {
        let schema = Schema::of(&[("g", DataType::Str), ("x", DataType::Int)]);
        let rel = Relation::empty(schema);
        let g = GroupBy::new(
            Box::new(Scan::new(Arc::new(rel))),
            &["g"],
            vec![AggSpec::new(AggFunc::Count, Expr::lit(1i64), "n")],
        );
        let out = g.execute(&mut ExecContext::new()).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema().names(), vec!["g", "n"]);
    }

    #[test]
    fn multi_key_grouping() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(1), Value::Int(1)],
        ];
        let g = GroupBy::new(
            Box::new(Scan::new(Arc::new(Relation::new(schema, rows).unwrap()))),
            &["a", "b"],
            vec![AggSpec::new(AggFunc::Count, Expr::lit(1i64), "n")],
        );
        let out = g.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn sum_non_numeric_errors() {
        let g = GroupBy::new(
            input(),
            &["g"],
            vec![AggSpec::new(AggFunc::Sum, Expr::col("g"), "bad")],
        );
        assert!(g.execute(&mut ExecContext::new()).is_err());
    }
}
