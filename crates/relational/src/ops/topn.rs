//! Top-N: fused sort + limit.
//!
//! §6 of the paper describes composing SSJoin with a top-k operator for
//! fuzzy-match queries; this is that operator on the relational side. A
//! bounded binary heap keeps the best `n` rows, so the cost is
//! O(rows · log n) instead of a full sort.

use crate::ops::{timed, ExecContext, PlanNode, SortKey};
use crate::{Relation, Result, Row};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Keep the `n` first rows under the given sort order.
pub struct TopN {
    input: Box<dyn PlanNode>,
    keys: Vec<SortKey>,
    n: usize,
}

impl TopN {
    /// Top `n` rows of `input` ordered by `keys`.
    pub fn new(input: Box<dyn PlanNode>, keys: Vec<SortKey>, n: usize) -> Self {
        Self { input, keys, n }
    }
}

/// Heap entry ordering rows by the sort keys; the heap is a max-heap over
/// "worst first" so the worst retained row is at the top.
struct HeapRow {
    row: Row,
    key_idx: std::rc::Rc<Vec<(usize, bool)>>,
    seq: usize,
}

impl HeapRow {
    fn order(&self, other: &Self) -> Ordering {
        for &(i, asc) in self.key_idx.iter() {
            let ord = self.row[i].cmp(&other.row[i]);
            if ord != Ordering::Equal {
                return if asc { ord } else { ord.reverse() };
            }
        }
        // Stable: earlier input rows sort first.
        self.seq.cmp(&other.seq)
    }
}

impl PartialEq for HeapRow {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}
impl Eq for HeapRow {}
impl PartialOrd for HeapRow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapRow {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order(other)
    }
}

impl PlanNode for TopN {
    fn name(&self) -> &str {
        "top_n"
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let input = self.input.execute(ctx)?;
            let schema = input.schema().clone();
            if self.n == 0 {
                return Ok(Relation::empty(schema));
            }
            let key_idx: std::rc::Rc<Vec<(usize, bool)>> = std::rc::Rc::new(
                self.keys
                    .iter()
                    .map(|k| Ok((schema.index_of(&k.column)?, k.ascending)))
                    .collect::<Result<_>>()?,
            );
            let mut heap: BinaryHeap<HeapRow> = BinaryHeap::with_capacity(self.n + 1);
            for (seq, row) in input.into_rows().into_iter().enumerate() {
                heap.push(HeapRow {
                    row,
                    key_idx: key_idx.clone(),
                    seq,
                });
                if heap.len() > self.n {
                    heap.pop(); // drop the current worst
                }
            }
            let mut rows: Vec<HeapRow> = heap.into_vec();
            rows.sort();
            Ok(Relation::from_trusted_rows(
                schema,
                rows.into_iter().map(|h| h.row).collect(),
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Scan, Sort};
    use crate::{DataType, Schema, Value};
    use std::sync::Arc;

    fn input(vals: &[i64]) -> Arc<Relation> {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rows = vals.iter().map(|&v| vec![Value::Int(v)]).collect();
        Arc::new(Relation::new(schema, rows).unwrap())
    }

    #[test]
    fn keeps_best_n() {
        let rel = input(&[5, 1, 9, 3, 7, 2]);
        let top = TopN::new(Box::new(Scan::new(rel)), vec![SortKey::desc("x")], 3);
        let out = top.execute(&mut ExecContext::new()).unwrap();
        let xs: Vec<i64> = out.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(xs, vec![9, 7, 5]);
    }

    #[test]
    fn matches_sort_plus_truncate() {
        let vals: Vec<i64> = (0..50).map(|i| (i * 37) % 23).collect();
        let rel = input(&vals);
        for n in [0usize, 1, 5, 50, 100] {
            let top = TopN::new(Box::new(Scan::new(rel.clone())), vec![SortKey::asc("x")], n)
                .execute(&mut ExecContext::new())
                .unwrap();
            let mut sorted = Sort::new(Box::new(Scan::new(rel.clone())), vec![SortKey::asc("x")])
                .execute(&mut ExecContext::new())
                .unwrap()
                .into_rows();
            sorted.truncate(n);
            assert_eq!(top.rows(), &sorted[..], "n={n}");
        }
    }

    #[test]
    fn zero_n_is_empty() {
        let top = TopN::new(
            Box::new(Scan::new(input(&[1, 2]))),
            vec![SortKey::asc("x")],
            0,
        );
        assert!(top.execute(&mut ExecContext::new()).unwrap().is_empty());
    }

    #[test]
    fn unknown_key_errors() {
        let top = TopN::new(
            Box::new(Scan::new(input(&[1]))),
            vec![SortKey::asc("nope")],
            1,
        );
        assert!(top.execute(&mut ExecContext::new()).is_err());
    }
}
