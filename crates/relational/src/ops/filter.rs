//! Row filtering.

use crate::ops::{timed, ExecContext, PlanNode};
use crate::{Expr, Relation, Result};

/// Filter: keeps rows whose predicate evaluates truthy.
pub struct Filter {
    input: Box<dyn PlanNode>,
    predicate: Expr,
    label: String,
}

impl Filter {
    /// Filter `input` by `predicate`.
    pub fn new(input: Box<dyn PlanNode>, predicate: Expr) -> Self {
        Self {
            input,
            predicate,
            label: "filter".to_string(),
        }
    }

    /// Filter with a custom statistics label (the paper's figures name the
    /// verification filter phase explicitly).
    pub fn labeled(input: Box<dyn PlanNode>, predicate: Expr, label: impl Into<String>) -> Self {
        Self {
            input,
            predicate,
            label: label.into(),
        }
    }
}

impl PlanNode for Filter {
    fn name(&self) -> &str {
        &self.label
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let input = self.input.execute(ctx)?;
            let bound = self.predicate.bind(input.schema())?;
            let schema = input.schema().clone();
            let mut rows = Vec::new();
            for row in input.into_rows() {
                if bound.eval(&row)?.truthy() {
                    rows.push(row);
                }
            }
            Ok(Relation::from_trusted_rows(schema, rows))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Scan;
    use crate::{DataType, Schema, Value};
    use std::sync::Arc;

    fn input() -> Box<dyn PlanNode> {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let rows = (1..=5).map(|i| vec![Value::Int(i)]).collect();
        Box::new(Scan::new(Arc::new(Relation::new(schema, rows).unwrap())))
    }

    #[test]
    fn keeps_matching_rows() {
        let f = Filter::new(input(), Expr::col("a").ge(Expr::lit(3i64)));
        let out = f.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[0], vec![Value::Int(3)]);
    }

    #[test]
    fn empty_result_keeps_schema() {
        let f = Filter::new(input(), Expr::lit(false));
        let out = f.execute(&mut ExecContext::new()).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema().names(), vec!["a"]);
    }

    #[test]
    fn labeled_stats() {
        let f = Filter::labeled(input(), Expr::lit(true), "verify");
        let mut ctx = ExecContext::new();
        f.execute(&mut ctx).unwrap();
        assert_eq!(ctx.rows_for("verify"), 5);
    }

    #[test]
    fn udf_predicate() {
        let pred = Expr::udf("is_even", vec![Expr::col("a")], |args| {
            Ok(Value::Bool(args[0].as_i64().unwrap_or(1) % 2 == 0))
        });
        let f = Filter::new(input(), pred);
        let out = f.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 2);
    }
}
