//! Physical plan operators.
//!
//! Plans are trees of boxed [`PlanNode`]s executing bottom-up with full
//! materialization. Every node reports its own processing time (excluding
//! children) and output cardinality into the [`ExecContext`], which the
//! benchmark harness uses to produce the per-phase breakdowns of the paper's
//! figures.

mod filter;
mod group;
mod groupwise;
mod join;
mod project;
mod setops;
mod sort;
mod topn;

pub use filter::Filter;
pub use group::{AggSpec, GroupBy};
pub use groupwise::Groupwise;
pub use join::{HashJoin, MergeJoin};
pub use project::Project;
pub use setops::{Distinct, Union};
pub use sort::{Limit, Sort, SortKey};
pub use topn::TopN;

use crate::{Relation, Result, Schema};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution statistics for one operator invocation.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Operator display name.
    pub operator: String,
    /// Rows produced.
    pub output_rows: usize,
    /// Time spent in this operator (children excluded).
    pub elapsed: Duration,
}

/// Collects per-operator statistics during plan execution.
#[derive(Debug, Default)]
pub struct ExecContext {
    stats: Vec<OpStats>,
}

impl ExecContext {
    /// Fresh context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one operator invocation.
    pub fn record(&mut self, operator: &str, output_rows: usize, elapsed: Duration) {
        self.stats.push(OpStats {
            operator: operator.to_string(),
            output_rows,
            elapsed,
        });
    }

    /// All recorded statistics, in completion order (children before
    /// parents).
    pub fn stats(&self) -> &[OpStats] {
        &self.stats
    }

    /// Total rows produced by operators whose name matches `operator`.
    pub fn rows_for(&self, operator: &str) -> usize {
        self.stats
            .iter()
            .filter(|s| s.operator == operator)
            .map(|s| s.output_rows)
            .sum()
    }

    /// Total time spent in operators whose name matches `operator`.
    pub fn time_for(&self, operator: &str) -> Duration {
        self.stats
            .iter()
            .filter(|s| s.operator == operator)
            .map(|s| s.elapsed)
            .sum()
    }
}

/// A physical plan node.
pub trait PlanNode: Send + Sync {
    /// Display name used in statistics.
    fn name(&self) -> &str;

    /// Execute the subtree rooted here, materializing the result.
    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation>;
}

/// Execute a child and then time the parent's own processing closure.
pub(crate) fn timed<F>(ctx: &mut ExecContext, name: &str, f: F) -> Result<Relation>
where
    F: FnOnce(&mut ExecContext) -> Result<Relation>,
{
    // Children run inside `f` before the parent's own work; to attribute
    // time correctly, `f` receives the context and the parent measures only
    // the span not covered by recorded child spans.
    let child_time_before: Duration = ctx.stats.iter().map(|s| s.elapsed).sum();
    let start = Instant::now();
    let out = f(ctx)?;
    let total = start.elapsed();
    let child_time_after: Duration = ctx.stats.iter().map(|s| s.elapsed).sum();
    let self_time = total.saturating_sub(child_time_after.saturating_sub(child_time_before));
    ctx.record(name, out.len(), self_time);
    Ok(out)
}

/// Leaf node wrapping an existing relation (shared, zero-copy).
pub struct Scan {
    relation: Arc<Relation>,
    label: String,
}

impl Scan {
    /// Scan over a shared relation.
    pub fn new(relation: Arc<Relation>) -> Self {
        Self {
            relation,
            label: "scan".to_string(),
        }
    }

    /// Scan with a custom label for statistics.
    pub fn labeled(relation: Arc<Relation>, label: impl Into<String>) -> Self {
        Self {
            relation,
            label: label.into(),
        }
    }

    /// The scanned relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.relation.schema()
    }
}

impl PlanNode for Scan {
    fn name(&self) -> &str {
        &self.label
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        let start = Instant::now();
        let out = (*self.relation).clone();
        ctx.record(&self.label, out.len(), start.elapsed());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Value};

    #[test]
    fn scan_clones_relation() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rel = Arc::new(
            Relation::new(schema, vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap(),
        );
        let scan = Scan::new(rel.clone());
        let mut ctx = ExecContext::new();
        let out = scan.execute(&mut ctx).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(ctx.rows_for("scan"), 2);
    }

    #[test]
    fn context_aggregation() {
        let mut ctx = ExecContext::new();
        ctx.record("a", 3, Duration::from_millis(5));
        ctx.record("a", 2, Duration::from_millis(7));
        ctx.record("b", 1, Duration::from_millis(1));
        assert_eq!(ctx.rows_for("a"), 5);
        assert_eq!(ctx.time_for("a"), Duration::from_millis(12));
        assert_eq!(ctx.stats().len(), 3);
    }
}
