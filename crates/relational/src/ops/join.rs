//! Equi-joins: hash join and sort-merge join.
//!
//! §5 of the paper notes the optimizer's plans "only involved hash and merge
//! joins"; both are provided so the engine ablation can compare them.

use crate::ops::{timed, ExecContext, PlanNode};
use crate::{EngineError, Relation, Result, Row, Schema, Value};
use std::collections::HashMap;

/// Key column pairs `(left name, right name)` for an equi-join.
pub type KeyPairs = Vec<(String, String)>;

fn key_indexes(keys: &KeyPairs, left: &Schema, right: &Schema) -> Result<(Vec<usize>, Vec<usize>)> {
    if keys.is_empty() {
        return Err(EngineError::Plan(
            "equi-join requires at least one key pair".into(),
        ));
    }
    let l = keys
        .iter()
        .map(|(a, _)| left.index_of(a))
        .collect::<Result<Vec<_>>>()?;
    let r = keys
        .iter()
        .map(|(_, b)| right.index_of(b))
        .collect::<Result<Vec<_>>>()?;
    Ok((l, r))
}

fn extract_key(row: &Row, idxs: &[usize]) -> Vec<Value> {
    idxs.iter().map(|&i| row[i].clone()).collect()
}

fn concat_rows(left: &Row, right: &Row) -> Row {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
    out
}

/// Inner hash equi-join.
///
/// Builds a hash table on the right input and probes with the left. Output
/// schema is the left schema followed by the right schema; clashing right
/// column names get the configured prefix (default `s_`, after the paper's
/// `S` relation).
pub struct HashJoin {
    left: Box<dyn PlanNode>,
    right: Box<dyn PlanNode>,
    keys: KeyPairs,
    right_prefix: String,
    label: String,
}

impl HashJoin {
    /// Join `left` and `right` on the given key column pairs.
    pub fn new(left: Box<dyn PlanNode>, right: Box<dyn PlanNode>, keys: KeyPairs) -> Self {
        Self {
            left,
            right,
            keys,
            right_prefix: "s_".to_string(),
            label: "hash_join".to_string(),
        }
    }

    /// Convenience for string key names.
    pub fn on(left: Box<dyn PlanNode>, right: Box<dyn PlanNode>, keys: &[(&str, &str)]) -> Self {
        Self::new(
            left,
            right,
            keys.iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        )
    }

    /// Override the prefix applied to clashing right-side column names.
    pub fn with_right_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.right_prefix = prefix.into();
        self
    }

    /// Override the statistics label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl PlanNode for HashJoin {
    fn name(&self) -> &str {
        &self.label
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let left = self.left.execute(ctx)?;
            let right = self.right.execute(ctx)?;
            let (lk, rk) = key_indexes(&self.keys, left.schema(), right.schema())?;
            let schema = left.schema().join(right.schema(), &self.right_prefix);

            let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(right.len());
            for row in right.rows() {
                table.entry(extract_key(row, &rk)).or_default().push(row);
            }
            let mut rows = Vec::new();
            for lrow in left.rows() {
                if let Some(matches) = table.get(&extract_key(lrow, &lk)) {
                    for rrow in matches {
                        rows.push(concat_rows(lrow, rrow));
                    }
                }
            }
            Ok(Relation::from_trusted_rows(schema, rows))
        })
    }
}

/// Inner sort-merge equi-join. Sorts both inputs by their key columns and
/// merges, producing the cross product within each matching key run.
pub struct MergeJoin {
    left: Box<dyn PlanNode>,
    right: Box<dyn PlanNode>,
    keys: KeyPairs,
    right_prefix: String,
}

impl MergeJoin {
    /// Join `left` and `right` on the given key column pairs.
    pub fn new(left: Box<dyn PlanNode>, right: Box<dyn PlanNode>, keys: KeyPairs) -> Self {
        Self {
            left,
            right,
            keys,
            right_prefix: "s_".to_string(),
        }
    }

    /// Convenience for string key names.
    pub fn on(left: Box<dyn PlanNode>, right: Box<dyn PlanNode>, keys: &[(&str, &str)]) -> Self {
        Self::new(
            left,
            right,
            keys.iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        )
    }

    /// Override the prefix applied to clashing right-side column names.
    pub fn with_right_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.right_prefix = prefix.into();
        self
    }
}

impl PlanNode for MergeJoin {
    fn name(&self) -> &str {
        "merge_join"
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let left = self.left.execute(ctx)?;
            let right = self.right.execute(ctx)?;
            let (lk, rk) = key_indexes(&self.keys, left.schema(), right.schema())?;
            let schema = left.schema().join(right.schema(), &self.right_prefix);

            let mut lrows = left.into_rows();
            let mut rrows = right.into_rows();
            sort_rows_by(&mut lrows, &lk);
            sort_rows_by(&mut rrows, &rk);

            let mut rows = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < lrows.len() && j < rrows.len() {
                let lkey = extract_key(&lrows[i], &lk);
                let rkey = extract_key(&rrows[j], &rk);
                match lkey.cmp(&rkey) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        // Find the extents of the equal-key runs.
                        let i_end = run_end(&lrows, i, &lk, &lkey);
                        let j_end = run_end(&rrows, j, &rk, &rkey);
                        for lrow in &lrows[i..i_end] {
                            for rrow in &rrows[j..j_end] {
                                rows.push(concat_rows(lrow, rrow));
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
            }
            Ok(Relation::from_trusted_rows(schema, rows))
        })
    }
}

fn sort_rows_by(rows: &mut [Row], idxs: &[usize]) {
    rows.sort_by(|a, b| {
        for &i in idxs {
            let ord = a[i].cmp(&b[i]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn run_end(rows: &[Row], start: usize, idxs: &[usize], key: &[Value]) -> usize {
    let mut end = start + 1;
    while end < rows.len() && extract_key(&rows[end], idxs) == key {
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Scan;
    use crate::DataType;
    use std::sync::Arc;

    fn rel(name_vals: Vec<(i64, &str)>) -> Arc<Relation> {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Str)]);
        let rows = name_vals
            .into_iter()
            .map(|(k, v)| vec![Value::Int(k), Value::str(v)])
            .collect();
        Arc::new(Relation::new(schema, rows).unwrap())
    }

    fn scan(r: Arc<Relation>) -> Box<dyn PlanNode> {
        Box::new(Scan::new(r))
    }

    #[test]
    fn hash_join_basic() {
        let l = rel(vec![(1, "a"), (2, "b"), (3, "c")]);
        let r = rel(vec![(2, "x"), (3, "y"), (3, "z"), (4, "w")]);
        let j = HashJoin::on(scan(l), scan(r), &[("k", "k")]);
        let out = j.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.schema().names(), vec!["k", "v", "s_k", "s_v"]);
        assert_eq!(out.len(), 3); // (2,x), (3,y), (3,z)
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let l = rel(vec![(5, "a"), (1, "b"), (5, "c"), (2, "d")]);
        let r = rel(vec![(5, "p"), (5, "q"), (2, "r"), (9, "s")]);
        let h = HashJoin::on(scan(l.clone()), scan(r.clone()), &[("k", "k")])
            .execute(&mut ExecContext::new())
            .unwrap();
        let m = MergeJoin::on(scan(l), scan(r), &[("k", "k")])
            .execute(&mut ExecContext::new())
            .unwrap();
        assert_eq!(h.sorted_rows(), m.sorted_rows());
        assert_eq!(h.len(), 5); // 2*2 for k=5 plus 1 for k=2
    }

    #[test]
    fn multi_key_join() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let l = Arc::new(
            Relation::new(
                schema.clone(),
                vec![
                    vec![Value::Int(1), Value::str("x")],
                    vec![Value::Int(1), Value::str("y")],
                ],
            )
            .unwrap(),
        );
        let r = Arc::new(
            Relation::new(
                schema,
                vec![
                    vec![Value::Int(1), Value::str("x")],
                    vec![Value::Int(2), Value::str("x")],
                ],
            )
            .unwrap(),
        );
        let j = HashJoin::on(scan(l), scan(r), &[("a", "a"), ("b", "b")]);
        let out = j.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn disjoint_keys_empty() {
        let l = rel(vec![(1, "a")]);
        let r = rel(vec![(2, "b")]);
        let out = HashJoin::on(scan(l), scan(r), &[("k", "k")])
            .execute(&mut ExecContext::new())
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn empty_keys_rejected() {
        let l = rel(vec![(1, "a")]);
        let r = rel(vec![(1, "b")]);
        let j = HashJoin::new(scan(l), scan(r), vec![]);
        assert!(j.execute(&mut ExecContext::new()).is_err());
    }

    #[test]
    fn duplicate_heavy_join_counts() {
        // 3 copies of k=7 on each side -> 9 output rows.
        let l = rel(vec![(7, "a"), (7, "b"), (7, "c")]);
        let r = rel(vec![(7, "x"), (7, "y"), (7, "z")]);
        let h = HashJoin::on(scan(l.clone()), scan(r.clone()), &[("k", "k")])
            .execute(&mut ExecContext::new())
            .unwrap();
        let m = MergeJoin::on(scan(l), scan(r), &[("k", "k")])
            .execute(&mut ExecContext::new())
            .unwrap();
        assert_eq!(h.len(), 9);
        assert_eq!(m.len(), 9);
    }

    #[test]
    fn custom_prefix() {
        let l = rel(vec![(1, "a")]);
        let r = rel(vec![(1, "b")]);
        let j = HashJoin::on(scan(l), scan(r), &[("k", "k")]).with_right_prefix("rhs_");
        let out = j.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.schema().names(), vec!["k", "v", "rhs_k", "rhs_v"]);
    }
}
