//! Sorting and limiting.

use crate::ops::{timed, ExecContext, PlanNode};
use crate::{Relation, Result};

/// One sort key: a column and a direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Column name.
    pub column: String,
    /// Ascending if true.
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: impl Into<String>) -> Self {
        Self {
            column: column.into(),
            ascending: true,
        }
    }

    /// Descending key.
    pub fn desc(column: impl Into<String>) -> Self {
        Self {
            column: column.into(),
            ascending: false,
        }
    }
}

/// Stable multi-key sort.
pub struct Sort {
    input: Box<dyn PlanNode>,
    keys: Vec<SortKey>,
}

impl Sort {
    /// Sort `input` by `keys` (applied lexicographically).
    pub fn new(input: Box<dyn PlanNode>, keys: Vec<SortKey>) -> Self {
        Self { input, keys }
    }
}

impl PlanNode for Sort {
    fn name(&self) -> &str {
        "sort"
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let input = self.input.execute(ctx)?;
            let idxs: Vec<(usize, bool)> = self
                .keys
                .iter()
                .map(|k| Ok((input.schema().index_of(&k.column)?, k.ascending)))
                .collect::<Result<_>>()?;
            let schema = input.schema().clone();
            let mut rows = input.into_rows();
            rows.sort_by(|a, b| {
                for &(i, asc) in &idxs {
                    let ord = a[i].cmp(&b[i]);
                    if ord != std::cmp::Ordering::Equal {
                        return if asc { ord } else { ord.reverse() };
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(Relation::from_trusted_rows(schema, rows))
        })
    }
}

/// Keep the first `n` rows of the input (in input order).
pub struct Limit {
    input: Box<dyn PlanNode>,
    n: usize,
}

impl Limit {
    /// Limit `input` to `n` rows.
    pub fn new(input: Box<dyn PlanNode>, n: usize) -> Self {
        Self { input, n }
    }
}

impl PlanNode for Limit {
    fn name(&self) -> &str {
        "limit"
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let input = self.input.execute(ctx)?;
            let schema = input.schema().clone();
            let mut rows = input.into_rows();
            rows.truncate(self.n);
            Ok(Relation::from_trusted_rows(schema, rows))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Scan;
    use crate::{DataType, Schema, Value};
    use std::sync::Arc;

    fn input() -> Box<dyn PlanNode> {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(2), Value::str("x")],
            vec![Value::Int(1), Value::str("z")],
            vec![Value::Int(2), Value::str("a")],
        ];
        Box::new(Scan::new(Arc::new(Relation::new(schema, rows).unwrap())))
    }

    #[test]
    fn multi_key_sort() {
        let s = Sort::new(input(), vec![SortKey::asc("a"), SortKey::asc("b")]);
        let out = s.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.rows()[0], vec![Value::Int(1), Value::str("z")]);
        assert_eq!(out.rows()[1], vec![Value::Int(2), Value::str("a")]);
        assert_eq!(out.rows()[2], vec![Value::Int(2), Value::str("x")]);
    }

    #[test]
    fn descending_sort() {
        let s = Sort::new(input(), vec![SortKey::desc("a"), SortKey::asc("b")]);
        let out = s.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(2));
        assert_eq!(out.rows()[2][0], Value::Int(1));
    }

    #[test]
    fn limit_truncates() {
        let l = Limit::new(input(), 2);
        let out = l.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 2);
        let l0 = Limit::new(input(), 0);
        assert!(l0.execute(&mut ExecContext::new()).unwrap().is_empty());
        let lbig = Limit::new(input(), 99);
        assert_eq!(lbig.execute(&mut ExecContext::new()).unwrap().len(), 3);
    }

    #[test]
    fn sort_unknown_column_errors() {
        let s = Sort::new(input(), vec![SortKey::asc("nope")]);
        assert!(s.execute(&mut ExecContext::new()).is_err());
    }
}
