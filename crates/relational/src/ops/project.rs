//! Projection.

use crate::ops::{timed, ExecContext, PlanNode};
use crate::{DataType, Expr, Field, Relation, Result, Schema, Value};

/// Projection: evaluates named expressions over every input row.
///
/// Output column types are inferred from the first produced row (falling
/// back to `Str` for all-null columns), which is sufficient for an engine
/// without a static type checker.
pub struct Project {
    input: Box<dyn PlanNode>,
    columns: Vec<(String, Expr)>,
}

impl Project {
    /// Project `input` onto the given `(output name, expression)` pairs.
    pub fn new(input: Box<dyn PlanNode>, columns: Vec<(String, Expr)>) -> Self {
        Self { input, columns }
    }

    /// Convenience: keep the named input columns unchanged.
    pub fn columns(input: Box<dyn PlanNode>, names: &[&str]) -> Self {
        Self::new(
            input,
            names
                .iter()
                .map(|n| (n.to_string(), Expr::col(*n)))
                .collect(),
        )
    }
}

impl PlanNode for Project {
    fn name(&self) -> &str {
        "project"
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let input = self.input.execute(ctx)?;
            let bound: Vec<(&str, crate::BoundExpr)> = self
                .columns
                .iter()
                .map(|(name, e)| Ok((name.as_str(), e.bind(input.schema())?)))
                .collect::<Result<_>>()?;
            let mut rows = Vec::with_capacity(input.len());
            for row in input.rows() {
                let out: Vec<Value> = bound
                    .iter()
                    .map(|(_, e)| e.eval(row))
                    .collect::<Result<_>>()?;
                rows.push(out);
            }
            let schema = infer_schema(&self.columns, &rows);
            Ok(Relation::from_trusted_rows(schema, rows))
        })
    }
}

fn infer_schema(columns: &[(String, Expr)], rows: &[Vec<Value>]) -> std::sync::Arc<Schema> {
    let fields = columns
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let dtype = rows
                .iter()
                .find_map(|r| r[i].data_type())
                .unwrap_or(DataType::Str);
            Field::new(name.clone(), dtype)
        })
        .collect();
    Schema::new(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Scan;
    use std::sync::Arc;

    fn input() -> Box<dyn PlanNode> {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        Box::new(Scan::new(Arc::new(rel)))
    }

    #[test]
    fn computes_expressions() {
        let p = Project::new(
            input(),
            vec![
                ("sum".into(), Expr::col("a").add(Expr::col("b"))),
                ("a".into(), Expr::col("a")),
            ],
        );
        let out = p.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.schema().names(), vec!["sum", "a"]);
        assert_eq!(out.rows()[0], vec![Value::Int(11), Value::Int(1)]);
        assert_eq!(out.rows()[1], vec![Value::Int(22), Value::Int(2)]);
    }

    #[test]
    fn keep_columns_helper() {
        let p = Project::columns(input(), &["b"]);
        let out = p.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.schema().names(), vec!["b"]);
        assert_eq!(out.rows()[1], vec![Value::Int(20)]);
    }

    #[test]
    fn unknown_column_errors() {
        let p = Project::columns(input(), &["zz"]);
        assert!(p.execute(&mut ExecContext::new()).is_err());
    }

    #[test]
    fn empty_input_schema_defaults() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let rel = Relation::empty(schema);
        let p = Project::new(
            Box::new(Scan::new(Arc::new(rel))),
            vec![("x".into(), Expr::col("a"))],
        );
        let out = p.execute(&mut ExecContext::new()).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema().names(), vec!["x"]);
    }
}
