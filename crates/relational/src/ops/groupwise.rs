//! Groupwise processing (Chatziantoniou & Ross, VLDB 1996/97).
//!
//! §4.3.3 of the SSJoin paper implements the prefix filter with "a
//! combination of standard relational operators … and the notion of
//! groupwise processing where we iteratively process groups of tuples and
//! apply a subquery on each group". This operator does exactly that: the
//! input is partitioned by grouping columns (every distinct key value forms
//! one group, as in GROUP BY); a per-group sub-plan — expressed as a Rust
//! closure over the group's rows — runs on each group; results are unioned.

use crate::ops::{timed, ExecContext, PlanNode};
use crate::{EngineError, Relation, Result, Row, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The per-group subquery: receives the group's rows (sharing the input
/// schema) and produces output rows (sharing the declared output schema).
pub type GroupFn = Arc<dyn Fn(&Relation) -> Result<Relation> + Send + Sync>;

/// Groupwise-processing operator.
pub struct Groupwise {
    input: Box<dyn PlanNode>,
    keys: Vec<String>,
    subquery: GroupFn,
    label: String,
}

impl Groupwise {
    /// Apply `subquery` to every group of `input` rows sharing the same
    /// values in `keys`.
    pub fn new(
        input: Box<dyn PlanNode>,
        keys: &[&str],
        subquery: impl Fn(&Relation) -> Result<Relation> + Send + Sync + 'static,
    ) -> Self {
        Self {
            input,
            keys: keys.iter().map(|s| s.to_string()).collect(),
            subquery: Arc::new(subquery),
            label: "groupwise".to_string(),
        }
    }

    /// Override the statistics label (e.g. `prefix_filter`).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl PlanNode for Groupwise {
    fn name(&self) -> &str {
        &self.label
    }

    fn execute(&self, ctx: &mut ExecContext) -> Result<Relation> {
        timed(ctx, self.name(), |ctx| {
            let input = self.input.execute(ctx)?;
            let key_idx: Vec<usize> = self
                .keys
                .iter()
                .map(|k| input.schema().index_of(k))
                .collect::<Result<_>>()?;
            let in_schema = input.schema().clone();

            // Partition rows by key, preserving first-seen group order.
            let mut groups: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for row in input.into_rows() {
                let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
                match groups.get_mut(&key) {
                    Some(rows) => rows.push(row),
                    None => {
                        order.push(key.clone());
                        groups.insert(key, vec![row]);
                    }
                }
            }

            let mut out: Option<Relation> = None;
            for key in order {
                let rows = groups.remove(&key).expect("group recorded in order");
                let group = Relation::from_trusted_rows(in_schema.clone(), rows);
                let result = (self.subquery)(&group)?;
                match &mut out {
                    None => out = Some(result),
                    Some(acc) => {
                        if acc.schema().names() != result.schema().names() {
                            return Err(EngineError::SchemaMismatch {
                                context: format!(
                                    "groupwise subquery produced {} then {}",
                                    acc.schema(),
                                    result.schema()
                                ),
                            });
                        }
                        for row in result.into_rows() {
                            acc.push(row)?;
                        }
                    }
                }
            }
            // All-empty input: run the subquery once on an empty group so an
            // output schema exists.
            match out {
                Some(rel) => Ok(rel),
                None => (self.subquery)(&Relation::empty(in_schema)),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Scan;
    use crate::{DataType, Schema};

    fn input() -> Box<dyn PlanNode> {
        let schema = Schema::of(&[("g", DataType::Str), ("x", DataType::Int)]);
        let rows = vec![
            vec![Value::str("a"), Value::Int(3)],
            vec![Value::str("b"), Value::Int(9)],
            vec![Value::str("a"), Value::Int(1)],
            vec![Value::str("a"), Value::Int(2)],
            vec![Value::str("b"), Value::Int(8)],
        ];
        Box::new(Scan::new(Arc::new(Relation::new(schema, rows).unwrap())))
    }

    /// Per-group top-1 by x: a subquery GROUP BY can't easily express
    /// (that's the point of groupwise processing).
    #[test]
    fn per_group_top1() {
        let g = Groupwise::new(input(), &["g"], |group| {
            let mut rows = group.rows().to_vec();
            rows.sort_by(|a, b| b[1].cmp(&a[1]));
            rows.truncate(1);
            Ok(Relation::from_trusted_rows(group.schema().clone(), rows))
        });
        let out = g.execute(&mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 2);
        let sorted = out.sorted_rows();
        assert_eq!(sorted[0], vec![Value::str("a"), Value::Int(3)]);
        assert_eq!(sorted[1], vec![Value::str("b"), Value::Int(9)]);
    }

    /// Prefix extraction per group — the §4.3.3 use case in miniature: keep
    /// the 2 smallest x per group (a "prefix" under the x order).
    #[test]
    fn per_group_prefix() {
        let g = Groupwise::new(input(), &["g"], |group| {
            let mut rows = group.rows().to_vec();
            rows.sort_by(|a, b| a[1].cmp(&b[1]));
            rows.truncate(2);
            Ok(Relation::from_trusted_rows(group.schema().clone(), rows))
        })
        .with_label("prefix_filter");
        let mut ctx = ExecContext::new();
        let out = g.execute(&mut ctx).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(ctx.rows_for("prefix_filter"), 4);
    }

    #[test]
    fn empty_input_produces_subquery_schema() {
        let schema = Schema::of(&[("g", DataType::Str), ("x", DataType::Int)]);
        let scan = Box::new(Scan::new(Arc::new(Relation::empty(schema))));
        let g = Groupwise::new(scan, &["g"], |group| {
            Ok(Relation::empty(group.schema().clone()))
        });
        let out = g.execute(&mut ExecContext::new()).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema().names(), vec!["g", "x"]);
    }

    #[test]
    fn schema_drift_across_groups_rejected() {
        let flip = std::sync::atomic::AtomicBool::new(false);
        let g = Groupwise::new(input(), &["g"], move |group| {
            if flip.swap(true, std::sync::atomic::Ordering::SeqCst) {
                let schema = Schema::of(&[("other", DataType::Int)]);
                Ok(Relation::empty(schema))
            } else {
                Ok(Relation::from_trusted_rows(
                    group.schema().clone(),
                    group.rows().to_vec(),
                ))
            }
        });
        assert!(g.execute(&mut ExecContext::new()).is_err());
    }

    #[test]
    fn subquery_errors_propagate() {
        let g = Groupwise::new(input(), &["g"], |_| {
            Err(EngineError::Plan("subquery boom".into()))
        });
        assert!(g.execute(&mut ExecContext::new()).is_err());
    }
}
