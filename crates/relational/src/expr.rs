//! Scalar expressions and aggregates.
//!
//! Expressions reference columns *by name* and are bound against a concrete
//! [`Schema`] once per operator execution, producing a [`BoundExpr`] whose
//! per-row evaluation is positional.

use crate::{EngineError, Result, Row, Schema, Value};
use std::fmt;
use std::sync::Arc;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators. `Div` always produces a float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (float result)
    Div,
}

type UdfFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A scalar expression over a row.
#[derive(Clone)]
pub enum Expr {
    /// Column reference by name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison; uses the total order on [`Value`].
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical conjunction (null is false).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (null is false).
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation (null is false).
    Not(Box<Expr>),
    /// Arithmetic over numerics; ints stay ints except under `Div`.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Binary `min`/`max` over numerics.
    MinMax {
        /// True for max, false for min.
        is_max: bool,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// User-defined scalar function (a Rust closure).
    Udf {
        /// Display name (also used in error messages).
        name: String,
        /// The function.
        f: UdfFn,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => write!(f, "col({n})"),
            Expr::Lit(v) => write!(f, "lit({v})"),
            Expr::Cmp { op, left, right } => write!(f, "({left:?} {op:?} {right:?})"),
            Expr::And(a, b) => write!(f, "({a:?} AND {b:?})"),
            Expr::Or(a, b) => write!(f, "({a:?} OR {b:?})"),
            Expr::Not(e) => write!(f, "(NOT {e:?})"),
            Expr::Arith { op, left, right } => write!(f, "({left:?} {op:?} {right:?})"),
            Expr::MinMax {
                is_max,
                left,
                right,
            } => {
                write!(
                    f,
                    "({}({left:?}, {right:?}))",
                    if *is_max { "max" } else { "min" }
                )
            }
            Expr::Udf { name, args, .. } => write!(f, "{name}({args:?})"),
        }
    }
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Self {
        Expr::Lit(v.into())
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Self {
        Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `self <> other`
    pub fn ne(self, other: Expr) -> Self {
        Expr::Cmp {
            op: CmpOp::Ne,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `self < other`
    pub fn lt(self, other: Expr) -> Self {
        Expr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `self <= other`
    pub fn le(self, other: Expr) -> Self {
        Expr::Cmp {
            op: CmpOp::Le,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `self > other`
    pub fn gt(self, other: Expr) -> Self {
        Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `self >= other`
    pub fn ge(self, other: Expr) -> Self {
        Expr::Cmp {
            op: CmpOp::Ge,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `self AND other`
    pub fn and(self, other: Expr) -> Self {
        Expr::And(Box::new(self), Box::new(other))
    }
    /// `self OR other`
    pub fn or(self, other: Expr) -> Self {
        Expr::Or(Box::new(self), Box::new(other))
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expr::Not(Box::new(self))
    }
    /// `self + other`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Self {
        Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Self {
        Expr::Arith {
            op: ArithOp::Sub,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Self {
        Expr::Arith {
            op: ArithOp::Mul,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `self / other` (float)
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Self {
        Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `max(self, other)`
    pub fn max(self, other: Expr) -> Self {
        Expr::MinMax {
            is_max: true,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    /// `min(self, other)`
    pub fn min(self, other: Expr) -> Self {
        Expr::MinMax {
            is_max: false,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// A user-defined scalar function.
    pub fn udf(
        name: impl Into<String>,
        args: Vec<Expr>,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> Self {
        Expr::Udf {
            name: name.into(),
            f: Arc::new(f),
            args,
        }
    }

    /// Bind column names to positions in `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(name) => BoundExpr::Col(schema.index_of(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Cmp { op, left, right } => BoundExpr::Cmp {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::And(a, b) => BoundExpr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => BoundExpr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(e) => BoundExpr::Not(Box::new(e.bind(schema)?)),
            Expr::Arith { op, left, right } => BoundExpr::Arith {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::MinMax {
                is_max,
                left,
                right,
            } => BoundExpr::MinMax {
                is_max: *is_max,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Udf { name, f, args } => BoundExpr::Udf {
                name: name.clone(),
                f: f.clone(),
                args: args.iter().map(|a| a.bind(schema)).collect::<Result<_>>()?,
            },
        })
    }
}

/// An expression bound to a concrete schema (columns are positional).
#[derive(Clone)]
pub enum BoundExpr {
    /// Column by index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Conjunction.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Disjunction.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Negation.
    Not(Box<BoundExpr>),
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// min/max.
    MinMax {
        /// True for max.
        is_max: bool,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// UDF.
    Udf {
        /// Name.
        name: String,
        /// Function.
        f: UdfFn,
        /// Bound arguments.
        args: Vec<BoundExpr>,
    },
}

impl BoundExpr {
    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        Ok(match self {
            BoundExpr::Col(i) => row[*i].clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Cmp { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                let ord = l.cmp(&r);
                let b = match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                };
                Value::Bool(b)
            }
            BoundExpr::And(a, b) => Value::Bool(a.eval(row)?.truthy() && b.eval(row)?.truthy()),
            BoundExpr::Or(a, b) => Value::Bool(a.eval(row)?.truthy() || b.eval(row)?.truthy()),
            BoundExpr::Not(e) => Value::Bool(!e.eval(row)?.truthy()),
            BoundExpr::Arith { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                arith(*op, &l, &r)?
            }
            BoundExpr::MinMax {
                is_max,
                left,
                right,
            } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                let pick_left = if *is_max { l >= r } else { l <= r };
                if pick_left {
                    l
                } else {
                    r
                }
            }
            BoundExpr::Udf { name, f, args } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect::<Result<_>>()?;
                f(&vals).map_err(|e| EngineError::Udf {
                    name: name.clone(),
                    message: e.to_string(),
                })?
            }
        })
    }
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    let type_err = || EngineError::TypeMismatch {
        context: format!("arithmetic {op:?} on {l} and {r}"),
    };
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            ArithOp::Add => Value::Int(a + b),
            ArithOp::Sub => Value::Int(a - b),
            ArithOp::Mul => Value::Int(a * b),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(EngineError::TypeMismatch {
                        context: "integer division by zero".into(),
                    });
                }
                Value::Float(*a as f64 / *b as f64)
            }
        });
    }
    let a = l.as_f64().ok_or_else(type_err)?;
    let b = r.as_f64().ok_or_else(type_err)?;
    Ok(Value::Float(match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => a / b,
    }))
}

/// Aggregate functions for [`crate::GroupBy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (argument ignored).
    Count,
    /// Sum of a numeric column (int stays int, float stays float).
    Sum,
    /// Minimum under the total value order.
    Min,
    /// Maximum under the total value order.
    Max,
    /// Arithmetic mean (always float).
    Avg,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Schema};

    fn schema() -> std::sync::Arc<Schema> {
        Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("s", DataType::Str),
        ])
    }

    fn row() -> Row {
        vec![Value::Int(4), Value::Float(2.5), Value::str("hi")]
    }

    fn eval(e: Expr) -> Value {
        e.bind(&schema()).unwrap().eval(&row()).unwrap()
    }

    #[test]
    fn columns_and_literals() {
        assert_eq!(eval(Expr::col("a")), Value::Int(4));
        assert_eq!(eval(Expr::lit(7i64)), Value::Int(7));
        assert!(Expr::col("zz").bind(&schema()).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval(Expr::col("a").gt(Expr::lit(3i64))), Value::Bool(true));
        assert_eq!(eval(Expr::col("a").le(Expr::lit(3i64))), Value::Bool(false));
        assert_eq!(eval(Expr::col("s").eq(Expr::lit("hi"))), Value::Bool(true));
        // Cross-type numeric comparison.
        assert_eq!(eval(Expr::col("a").gt(Expr::col("b"))), Value::Bool(true));
    }

    #[test]
    fn boolean_logic() {
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        assert_eq!(eval(t.clone().and(f.clone())), Value::Bool(false));
        assert_eq!(eval(t.clone().or(f.clone())), Value::Bool(true));
        assert_eq!(eval(f.not()), Value::Bool(true));
        // Null is falsy.
        assert_eq!(eval(Expr::lit(Value::Null).and(t)), Value::Bool(false));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval(Expr::col("a").add(Expr::lit(1i64))), Value::Int(5));
        assert_eq!(eval(Expr::col("a").mul(Expr::col("b"))), Value::Float(10.0));
        assert_eq!(eval(Expr::col("a").div(Expr::lit(8i64))), Value::Float(0.5));
        assert!(Expr::col("s")
            .add(Expr::lit(1i64))
            .bind(&schema())
            .unwrap()
            .eval(&row())
            .is_err());
    }

    #[test]
    fn div_by_zero_int() {
        let e = Expr::lit(1i64).div(Expr::lit(0i64));
        assert!(e.bind(&schema()).unwrap().eval(&row()).is_err());
    }

    #[test]
    fn min_max() {
        assert_eq!(eval(Expr::col("a").max(Expr::lit(10i64))), Value::Int(10));
        assert_eq!(eval(Expr::col("a").min(Expr::lit(10i64))), Value::Int(4));
        assert_eq!(eval(Expr::col("a").max(Expr::col("b"))), Value::Int(4));
    }

    #[test]
    fn udf_eval_and_errors() {
        let double = Expr::udf("double", vec![Expr::col("a")], |args| {
            args[0]
                .as_i64()
                .map(|i| Value::Int(i * 2))
                .ok_or_else(|| EngineError::TypeMismatch {
                    context: "int expected".into(),
                })
        });
        assert_eq!(eval(double), Value::Int(8));

        let boom = Expr::udf("boom", vec![], |_| Err(EngineError::Plan("nope".into())));
        let err = boom.bind(&schema()).unwrap().eval(&row()).unwrap_err();
        assert!(matches!(err, EngineError::Udf { .. }));
    }

    #[test]
    fn debug_rendering() {
        let e = Expr::col("a")
            .gt(Expr::lit(1i64))
            .and(Expr::col("s").eq(Expr::lit("x")));
        let s = format!("{e:?}");
        assert!(s.contains("col(a)"));
        assert!(s.contains("AND"));
    }
}
